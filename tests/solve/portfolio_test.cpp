#include "solve/portfolio.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::checker {
namespace {

namespace metrics = common::metrics;

// A history where the enumerating search must exhaust ~2M interleaved
// write orders to refute the coherence violation (minutes), while the
// encoding refutes it by unit propagation (milliseconds).  The race's
// whole reason to exist.
litmus::LitmusTest search_hostile_case() {
  return litmus::parse_test(
      "name: bigrace\n"
      "p: w(x)1 w(x)2\n"
      "q: r(x)2 r(x)1\n"
      "r: w(y)1 w(y)2 w(y)3 w(y)4 w(y)5 w(y)6 w(y)7 w(y)8\n"
      "s: w(z)1 w(z)2 w(z)3 w(z)4 w(z)5 w(z)6 w(z)7 w(z)8\n");
}

TEST(Backend, ToStringFromStringRoundTrips) {
  for (const Backend b : {Backend::Search, Backend::Encode, Backend::Race}) {
    const auto parsed = backend_from_string(to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(backend_from_string("").has_value());
  EXPECT_FALSE(backend_from_string("Search").has_value());
  EXPECT_FALSE(backend_from_string("portfolio").has_value());
}

TEST(Portfolio, ThrowsOnUnknownModelForEveryBackend) {
  const auto t = litmus::find_test("fig1-sb");
  for (const Backend b : {Backend::Search, Backend::Encode, Backend::Race}) {
    EXPECT_THROW((void)Portfolio::check(t.hist, "NoSuchModel", b),
                 InvalidInput);
  }
}

TEST(Portfolio, AllThreeBackendsAgreeOnBuiltinSuite) {
  const auto names = models::model_names();
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& name : names) {
      const auto s = Portfolio::check(t.hist, name, Backend::Search);
      const auto e = Portfolio::check(t.hist, name, Backend::Encode);
      const auto r = Portfolio::check(t.hist, name, Backend::Race);
      ASSERT_FALSE(s.inconclusive) << t.name << " / " << name;
      ASSERT_FALSE(e.inconclusive) << t.name << " / " << name;
      ASSERT_FALSE(r.inconclusive) << t.name << " / " << name;
      EXPECT_EQ(s.allowed, e.allowed) << t.name << " / " << name;
      EXPECT_EQ(s.allowed, r.allowed) << t.name << " / " << name;
    }
  }
}

// The PR's acceptance bar: at a budget where the search backend leaves
// cells undecided, racing the encoder retires at least half of them —
// the backends charge budgets in different units, so one often finishes
// well inside a budget that exhausts the other.
TEST(Portfolio, RaceRetiresAtLeastHalfOfSearchInconclusives) {
  const BudgetSpec spec{.max_nodes = 100, .timeout_ms = 0};
  const auto names = models::model_names();
  std::size_t search_undecided = 0;
  std::size_t retired = 0;
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& name : names) {
      const auto s = Portfolio::check(t.hist, name, Backend::Search, spec);
      if (!s.inconclusive) continue;
      ++search_undecided;
      const auto r = Portfolio::check(t.hist, name, Backend::Race, spec);
      if (!r.inconclusive) ++retired;
    }
  }
  ASSERT_GT(search_undecided, 0u)
      << "budget too generous: no search cell ran out";
  EXPECT_GE(retired * 2, search_undecided)
      << retired << "/" << search_undecided << " retired";
}

TEST(Portfolio, RaceWinIsCountedAndLoserCancelLatencyIsBounded) {
  auto& encode_wins =
      metrics::Registry::global().counter("checker.portfolio_encode_wins");
  auto& cancel_latency = metrics::Registry::global().histogram(
      "checker.portfolio_cancel_latency_ns");
  const std::uint64_t wins_before = encode_wins.value();
  const std::uint64_t observed_before = cancel_latency.count();

  const auto t = search_hostile_case();
  const auto v = Portfolio::check(t.hist, "TSO", Backend::Race);
  EXPECT_FALSE(v.inconclusive);
  EXPECT_FALSE(v.allowed);

  // The encoder must have won (the search needs minutes on this case)
  // and the poisoned search must have unwound: the cancel latency is the
  // gap between the winner flipping the token and the loser actually
  // returning.  Bound it at 2s — cooperative cancellation polls per
  // search node, so anything slower means the poison path regressed.
  EXPECT_GT(encode_wins.value(), wins_before);
  ASSERT_GT(cancel_latency.count(), observed_before);
  EXPECT_LT(cancel_latency.max(), 2'000'000'000u);
}

TEST(Portfolio, RacedVerdictsAreDeterministicAcrossRepeats) {
  // Which backend wins a race varies with scheduling; the VERDICT must
  // not.  Each backend's own verdict depends only on its private budget,
  // and conclusive verdicts from the two always agree, so repeated races
  // (and any --jobs fan-out) see identical allowed/inconclusive bits.
  const BudgetSpec spec{.max_nodes = 100, .timeout_ms = 0};
  const auto models = models::all_models();
  litmus::RunOptions opts;
  opts.budget = spec;
  opts.backend = Backend::Race;
  const auto first =
      litmus::run_suite(litmus::builtin_suite(), models, opts);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto again =
        litmus::run_suite(litmus::builtin_suite(), models, opts);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      ASSERT_EQ(again[i].per_model.size(), first[i].per_model.size());
      for (std::size_t m = 0; m < first[i].per_model.size(); ++m) {
        const auto& a = first[i].per_model[m];
        const auto& b = again[i].per_model[m];
        EXPECT_EQ(a.inconclusive, b.inconclusive)
            << first[i].test << " / " << a.model;
        if (!a.inconclusive) {
          EXPECT_EQ(a.allowed, b.allowed)
              << first[i].test << " / " << a.model;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ssm::checker
