// Differential-fuzz coverage for the backend-agreement invariant
// (fuzz/oracle.hpp invariant 4, docs/PORTFOLIO.md): a fixed-seed smoke
// sweep that must stay clean, plus a sabotage test proving the invariant
// actually fires when one backend lies.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "fuzz/fuzzer.hpp"
#include "fuzz/oracle.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"

namespace ssm::fuzz {
namespace {

TEST(BackendFuzz, FixedSeedDifferentialSmokeIsClean) {
  // 2000 generated cases, every registry model checked by BOTH backends
  // per case.  Operational exploration is disabled — it dominates the
  // wall clock and tests nothing about backend agreement.
  FuzzOptions opts;
  opts.seed = 20260809;
  opts.iters = 2000;
  opts.oracle.check_operational = false;
  const auto report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 2000u);
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(BackendFuzz, InjectedSearchBugSurfacesAsBackendDisagreement) {
  // Sabotage the search side of Causal; the oracle's encode side always
  // runs the REAL encoding by name, so the lie must surface as a
  // BackendDisagreement even if no lattice edge catches it.
  FuzzOptions opts;
  opts.seed = 7;
  opts.iters = 200;
  opts.oracle.check_operational = false;
  opts.inject_bug_into = "Causal";
  const auto report = run_fuzz(opts);
  const bool disagreed = std::any_of(
      report.findings.begin(), report.findings.end(), [](const FuzzFinding& f) {
        return f.kind == FindingKind::BackendDisagreement &&
               f.model == "Causal";
      });
  EXPECT_TRUE(disagreed) << report.format();
}

TEST(BackendFuzz, OracleReproducesAPlantedDisagreement) {
  // Direct, deterministic version of the same property: one multi-write
  // history, Causal wrapped to wrongly reject it.
  auto models = models::all_models();
  for (auto& m : models) {
    if (m->name() == "Causal") m = make_buggy_model(std::move(m));
  }
  OracleOptions oopts;
  oopts.check_operational = false;
  const Oracle oracle(std::move(models), oopts);
  const auto t = litmus::parse_test(
      "name: two-writes\n"
      "p: w(x)1 w(x)2\n"
      "q: r(x)1 r(x)2\n");
  const auto result = oracle.run_case(t);
  const Finding* hit = nullptr;
  for (const auto& f : result.findings) {
    if (f.kind == FindingKind::BackendDisagreement && f.model == "Causal") {
      hit = &f;
    }
  }
  ASSERT_NE(hit, nullptr);
  EXPECT_NE(hit->detail.find("encode says allowed"), std::string::npos)
      << hit->detail;
  // The shrinker's predicate agrees the finding is real on this history.
  EXPECT_TRUE(oracle.reproduces(t.hist, *hit));
}

TEST(BackendFuzz, CheckBackendsOffSuppressesTheInvariant) {
  auto models = models::all_models();
  for (auto& m : models) {
    if (m->name() == "Causal") m = make_buggy_model(std::move(m));
  }
  OracleOptions oopts;
  oopts.check_operational = false;
  oopts.check_backends = false;
  const Oracle oracle(std::move(models), oopts);
  const auto t = litmus::parse_test(
      "name: two-writes\n"
      "p: w(x)1 w(x)2\n"
      "q: r(x)1 r(x)2\n");
  const auto result = oracle.run_case(t);
  for (const auto& f : result.findings) {
    EXPECT_NE(f.kind, FindingKind::BackendDisagreement) << f.detail;
  }
}

}  // namespace
}  // namespace ssm::fuzz
