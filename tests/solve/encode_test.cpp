#include "solve/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "litmus/parser.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"
#include "solve/sat.hpp"

namespace ssm::solve {
namespace {

// --- CDCL core ---

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, UnitClausesForceAssignment) {
  SatSolver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_unit(lit(a));
  s.add_unit(lit(b, true));
  ASSERT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.value(a));
  EXPECT_FALSE(s.value(b));
}

TEST(Sat, ContradictingUnitsAreUnsat) {
  SatSolver s;
  const Var a = s.new_var();
  s.add_unit(lit(a));
  s.add_unit(lit(a, true));
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ImplicationChainPropagates) {
  SatSolver s;
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 8; ++i) {
    s.add_implication(lit(v[static_cast<std::size_t>(i)]),
                      lit(v[static_cast<std::size_t>(i) + 1]));
  }
  s.add_unit(lit(v[0]));
  ASSERT_EQ(s.solve(), SatResult::Sat);
  for (const Var x : v) EXPECT_TRUE(s.value(x));
}

TEST(Sat, PigeonholeTwoIntoOneIsUnsatViaConflicts) {
  // Two pigeons, one hole: p0h0, p1h0 with at-most-one — exercises the
  // conflict/learning path, not just unit propagation.
  SatSolver s;
  const Var p0 = s.new_var();
  const Var p1 = s.new_var();
  s.add_unit(lit(p0));
  s.add_unit(lit(p1));
  s.add_clause({lit(p0, true), lit(p1, true)});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, CancelTokenAbortsSolve) {
  SatSolver s;
  // Unconstrained variables force at least one decision.
  for (int i = 0; i < 4; ++i) (void)s.new_var();
  std::atomic<bool> cancel{true};
  const checker::SearchControl control(&cancel);
  EXPECT_EQ(s.solve(control), SatResult::Undecided);
}

// --- encode_check semantics ---

TEST(Encode, SupportsExactlyTheRegistry) {
  for (const auto& name : models::model_names()) {
    EXPECT_TRUE(encode_supports(name)) << name;
  }
  EXPECT_FALSE(encode_supports("Bogus"));
  EXPECT_FALSE(encode_supports(""));
}

TEST(Encode, ThrowsOnUnknownModel) {
  const auto t = litmus::find_test("fig1-sb");
  EXPECT_THROW((void)encode_check(t.hist, "NoSuchModel"), InvalidInput);
}

// The tentpole contract: on every builtin case, for all 18 models, the
// SAT encoding and the enumerating search decide the same predicate, and
// every encode-positive packages a certificate the independent verifier
// accepts.
TEST(Encode, AgreesWithSearchAcrossBuiltinSuiteAndCertifies) {
  const auto names = models::model_names();
  std::size_t cells = 0;
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& name : names) {
      const auto search = models::make_model(name)->check(t.hist);
      const auto encode = encode_check(t.hist, name);
      ASSERT_FALSE(search.inconclusive) << t.name << " / " << name;
      ASSERT_FALSE(encode.inconclusive) << t.name << " / " << name;
      EXPECT_EQ(search.allowed, encode.allowed) << t.name << " / " << name;
      if (encode.allowed) {
        const auto w = checker::witness_from_verdict(t.hist, name, encode);
        const auto err = checker::verify_witness(t.hist, w);
        EXPECT_FALSE(err.has_value())
            << t.name << " / " << name << ": " << *err;
      }
      ++cells;
    }
  }
  EXPECT_GE(cells, names.size() * litmus::builtin_suite().size());
}

TEST(Encode, UnsatIsNeverDowngradedByABudget) {
  // A coherence violation is refuted by unit propagation, so even a
  // 1-node budget yields a definite no: an UNSAT proof is complete
  // regardless of remaining budget (solve/backend.hpp).
  const auto t = litmus::parse_test(
      "name: corr\n"
      "p: w(x)1 w(x)2\n"
      "q: r(x)2 r(x)1\n");
  checker::SearchBudget budget({.max_nodes = 1, .timeout_ms = 0});
  const checker::SearchControl control(nullptr, &budget);
  const auto v = encode_check(t.hist, "SC", control);
  EXPECT_FALSE(v.inconclusive);
  EXPECT_FALSE(v.allowed);
}

TEST(Encode, BudgetExhaustionIsInconclusive) {
  // A satisfiable many-writes instance needs real decisions to totalize
  // the order variables; a 1-node budget trips before the solver can
  // finish and the verdict degrades to INCONCLUSIVE, never a wrong no.
  const auto t = litmus::parse_test(
      "name: wide\n"
      "p: w(x)1 w(x)2 w(x)3 w(x)4\n"
      "q: w(x)5 w(x)6 w(x)7 w(x)8\n"
      "r: w(x)9 w(x)10 w(x)11 w(x)12\n");
  checker::SearchBudget budget({.max_nodes = 1, .timeout_ms = 0});
  const checker::SearchControl control(nullptr, &budget);
  const auto v = encode_check(t.hist, "SC", control);
  EXPECT_TRUE(v.inconclusive);
}

TEST(Encode, PreCancelledControlIsInconclusive) {
  const auto t = litmus::parse_test(
      "name: wide\n"
      "p: w(x)1 w(x)2 w(x)3 w(x)4\n"
      "q: w(x)5 w(x)6 w(x)7 w(x)8\n"
      "r: w(x)9 w(x)10 w(x)11 w(x)12\n");
  std::atomic<bool> cancel{true};
  const checker::SearchControl control(&cancel);
  const auto v = encode_check(t.hist, "SC", control);
  EXPECT_TRUE(v.inconclusive);
}

}  // namespace
}  // namespace ssm::solve
