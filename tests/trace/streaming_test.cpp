#include "trace/streaming.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "history/system_history.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"
#include "trace/format.hpp"
#include "trace/trace_export.hpp"

namespace ssm::trace {
namespace {

struct StreamRun {
  std::vector<WindowVerdict> verdicts;
  StreamSummary summary;
};

/// Streams a whole trace (as produced by generate_trace) through a
/// StreamingChecker, asserting the bounded-memory contract on the way:
/// the trace.window_ops gauge never exceeds the configured cap.
StreamRun run_stream(const std::string& text, StreamOptions options) {
  const std::size_t cap = options.window_ops;
  std::istringstream in(text);
  TraceReader reader(in);
  StreamRun run;
  StreamingChecker checker(reader.read_header(), std::move(options));
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { run.verdicts.push_back(v); });
  auto& gauge =
      common::metrics::Registry::global().gauge("trace.window_ops");
  TraceOp op;
  while (reader.next(op)) {
    checker.feed(op);
    EXPECT_LE(gauge.value(), static_cast<std::int64_t>(cap));
  }
  run.summary = checker.finish();
  return run;
}

std::string generate(const TraceGenOptions& gopts) {
  std::ostringstream out;
  (void)generate_trace(gopts, out);
  return out.str();
}

TEST(StreamingChecker, ScWorkloadIsOkInBoundedMemory) {
  TraceGenOptions gopts;
  gopts.machine = "sc";
  gopts.ops = 100'000;
  gopts.seed = 42;
  const std::string text = generate(gopts);

  StreamOptions sopts;
  sopts.window_ops = 256;
  const auto run = run_stream(text, sopts);

  EXPECT_EQ(run.summary.ops, 100'000u);
  EXPECT_EQ(run.summary.violations, 0u);
  EXPECT_EQ(run.summary.inconclusive, 0u);
  EXPECT_EQ(run.summary.ok, run.summary.windows);
  EXPECT_EQ(run.summary.windows, run.verdicts.size());
  for (const auto& v : run.verdicts) EXPECT_LE(v.ops, sopts.window_ops);
}

TEST(StreamingChecker, VerdictStreamIsDeterministic) {
  TraceGenOptions gopts;
  gopts.machine = "tso";
  gopts.ops = 20'000;
  gopts.seed = 7;
  const std::string text = generate(gopts);
  const std::string again = generate(gopts);
  EXPECT_EQ(text, again);  // generation is byte-identical per seed

  const auto a = run_stream(text, {});
  const auto b = run_stream(text, {});
  EXPECT_EQ(a.summary.digest, b.summary.digest);
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(verdict_line(a.verdicts[i]), verdict_line(b.verdicts[i]));
  }
}

TEST(StreamingChecker, FirstWindowAgreesWithWholeHistoryChecker) {
  // The first window starts from the all-zero initial state, so it is
  // directly comparable: rebuild the same prefix as a standalone
  // SystemHistory and hand it to the whole-history engine.
  TraceGenOptions gopts;
  gopts.machine = "sc";
  gopts.procs = 2;
  gopts.locs = 2;
  gopts.ops = 24;
  gopts.seed = 11;
  const std::string text = generate(gopts);

  StreamOptions sopts;
  sopts.window_ops = 64;  // one window swallows the whole trace
  const auto run = run_stream(text, sopts);
  ASSERT_EQ(run.verdicts.size(), 1u);
  EXPECT_EQ(run.verdicts[0].status, WindowVerdict::Status::Ok);

  std::istringstream in(text);
  TraceReader reader(in);
  const TraceHeader header = reader.read_header();
  history::SystemHistory h(
      history::SymbolTable::canonical(header.procs, header.locs));
  TraceOp op;
  while (reader.next(op)) {
    history::Operation o;
    o.kind = op.kind;
    o.label = op.label;
    o.proc = op.proc;
    o.loc = op.loc;
    o.value = op.value;
    o.rmw_read = op.rmw_read;
    h.append(o);
  }
  const auto verdict = models::make_model("SC")->check(h);
  EXPECT_TRUE(verdict.allowed);
  EXPECT_FALSE(verdict.inconclusive);
}

TEST(StreamingChecker, BakeryRcPcViolationIsReconfirmedOffline) {
  // The §5 schedule: Bakery on an RCpc machine under DelayDelivery admits
  // both processors.  The resulting trace is RCpc-legal but not
  // SC-admissible, so streaming it against SC must produce a definite
  // violation whose exported litmus test survives offline re-checking.
  TraceGenOptions gopts;
  gopts.scenario = "bakery";
  gopts.machine = "rc-pc";
  gopts.procs = 2;
  gopts.seed = 3;
  const std::string text = generate(gopts);

  StreamOptions sopts;
  sopts.model = "SC";
  const auto run = run_stream(text, sopts);
  ASSERT_GE(run.summary.violations, 1u);

  for (const auto& v : run.verdicts) {
    if (v.status != WindowVerdict::Status::Violation) continue;
    ASSERT_FALSE(v.litmus.empty());
    const auto suite = litmus::parse_suite(v.litmus);
    ASSERT_EQ(suite.size(), 1u);
    const auto& t = suite[0];
    ASSERT_TRUE(t.expectations.contains("SC"));
    EXPECT_FALSE(t.expectations.at("SC"));
    // Whole-history engine: the window really is forbidden under SC...
    const auto sc = models::make_model("SC")->check(t.hist);
    EXPECT_FALSE(sc.allowed);
    EXPECT_FALSE(sc.inconclusive);
    // ...while RCpc (which generated it) admits it, and that positive
    // verdict survives the independent witness verifier.
    const auto rcpc = models::make_model("RCpc")->check(t.hist);
    ASSERT_TRUE(rcpc.allowed);
    const auto w = checker::witness_from_verdict(t.hist, "RCpc", rcpc);
    EXPECT_EQ(checker::verify_witness(t.hist, w), std::nullopt);
  }

  // Under the model that produced it, the stream is clean.
  StreamOptions own;
  own.model = "RCpc";
  const auto clean = run_stream(text, own);
  EXPECT_EQ(clean.summary.violations, 0u);
}

TEST(StreamingChecker, StaleReadDowngradesToInconclusiveNeverViolation) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamOptions sopts;
  sopts.window_ops = 2;
  sopts.retired_ring = 1;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto w = [](Value v) {
    TraceOp op;
    op.kind = OpKind::Write;
    op.value = v;
    return op;
  };
  const auto r = [](Value v) {
    TraceOp op;
    op.kind = OpKind::Read;
    op.value = v;
    return op;
  };
  checker.feed(w(1));
  checker.feed(w(2));  // window 0 closes: committed=2, ring holds 1
  checker.feed(r(1));  // stale: resolvable only against the ring
  checker.feed(r(2));  // rebase: the committed value
  const auto summary = checker.finish();
  EXPECT_EQ(summary.windows, 2u);
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(summary.inconclusive, 1u);
  EXPECT_EQ(summary.dropped_ops, 1u);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].status, WindowVerdict::Status::Ok);
  EXPECT_EQ(verdicts[1].status, WindowVerdict::Status::Inconclusive);
  EXPECT_NE(verdicts[1].note.find("retired"), std::string::npos);
}

// REVIEW regression: a read of the committed value where the same value
// is re-written later in the window must NOT wire to the in-window write
// — that would build a window whose only write of the value is po-after
// the read and report a definite violation for a perfectly legal trace.
// The source is ambiguous, so the read drops and OK degrades to
// INCONCLUSIVE.
TEST(StreamingChecker, CommittedValueRewrittenInWindowIsAmbiguous) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamOptions sopts;
  sopts.window_ops = 2;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto op = [](OpKind k, Value v) {
    TraceOp o;
    o.kind = k;
    o.value = v;
    return o;
  };
  checker.feed(op(OpKind::Write, 4));
  checker.feed(op(OpKind::Write, 5));  // window 0: committed=5
  checker.feed(op(OpKind::Read, 5));   // saw the committed 5...
  checker.feed(op(OpKind::Write, 5));  // ...which window 1 re-writes
  const auto summary = checker.finish();
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(summary.inconclusive, 1u);
  EXPECT_EQ(summary.dropped_ops, 1u);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].status, WindowVerdict::Status::Ok);
  EXPECT_EQ(verdicts[1].status, WindowVerdict::Status::Inconclusive);
  EXPECT_NE(verdicts[1].note.find("ambiguous"), std::string::npos);
}

// Same ambiguity through the ring: a retired-but-not-committed value
// re-written in-window is equally undecidable.
TEST(StreamingChecker, RingValueRewrittenInWindowIsAmbiguous) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamOptions sopts;
  sopts.window_ops = 2;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto op = [](OpKind k, Value v) {
    TraceOp o;
    o.kind = k;
    o.value = v;
    return o;
  };
  checker.feed(op(OpKind::Write, 1));
  checker.feed(op(OpKind::Write, 2));  // window 0: committed=2, ring={0,1}
  checker.feed(op(OpKind::Write, 1));  // the flag toggles back to 1...
  checker.feed(op(OpKind::Read, 1));   // ...old 1 or new 1?  Undecidable.
  const auto summary = checker.finish();
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(summary.inconclusive, 1u);
  EXPECT_EQ(summary.dropped_ops, 1u);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[1].status, WindowVerdict::Status::Inconclusive);
  EXPECT_NE(verdicts[1].note.find("ambiguous"), std::string::npos);
}

// Duplicate and zero write values within one window are renumbered to
// fresh window-local values instead of making the window permanently
// "not independently checkable": a pure flag-toggle window is plain OK.
TEST(StreamingChecker, DuplicateAndZeroWritesStayCheckable) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamOptions sopts;
  sopts.window_ops = 8;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto w = [](Value v) {
    TraceOp o;
    o.kind = OpKind::Write;
    o.value = v;
    return o;
  };
  checker.feed(w(1));
  checker.feed(w(0));  // zeroing the slot
  checker.feed(w(1));  // toggling back
  const auto summary = checker.finish();
  EXPECT_EQ(summary.windows, 1u);
  EXPECT_EQ(summary.ok, 1u);
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(summary.inconclusive, 0u);
  EXPECT_EQ(summary.dropped_ops, 0u);
}

// A read of a value written twice in the same window cannot name its
// source write: it drops (INCONCLUSIVE), the rest of the window is
// still checked.
TEST(StreamingChecker, ReadOfMultiplyWrittenValueDrops) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamOptions sopts;
  sopts.window_ops = 8;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto op = [](OpKind k, Value v) {
    TraceOp o;
    o.kind = k;
    o.value = v;
    return o;
  };
  checker.feed(op(OpKind::Write, 1));
  checker.feed(op(OpKind::Read, 1));
  checker.feed(op(OpKind::Write, 1));
  const auto summary = checker.finish();
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(summary.inconclusive, 1u);
  EXPECT_EQ(summary.dropped_ops, 1u);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NE(verdicts[0].note.find("ambiguous"), std::string::npos);
}

// A definite violation in a renumbered window still exports a litmus
// test that the whole-history engine re-confirms, with the reverse map
// recorded in its origin.
TEST(StreamingChecker, RenumberedViolationIsReplayable) {
  TraceHeader header;
  header.procs = 2;
  header.locs = 2;
  StreamOptions sopts;
  sopts.model = "SC";
  sopts.window_ops = 8;
  StreamingChecker checker(header, sopts);
  std::vector<WindowVerdict> verdicts;
  checker.set_verdict_sink(
      [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const auto op = [](ProcId p, LocId x, OpKind k, Value v) {
    TraceOp o;
    o.kind = k;
    o.proc = p;
    o.loc = x;
    o.value = v;
    return o;
  };
  // Location 1: a coherence violation (P1 reads 2 then the older 1).
  // Location 0: a duplicated write value forcing renumbering.
  checker.feed(op(0, 0, OpKind::Write, 3));
  checker.feed(op(0, 0, OpKind::Write, 3));
  checker.feed(op(0, 1, OpKind::Write, 1));
  checker.feed(op(0, 1, OpKind::Write, 2));
  checker.feed(op(1, 1, OpKind::Read, 2));
  checker.feed(op(1, 1, OpKind::Read, 1));
  const auto summary = checker.finish();
  EXPECT_EQ(summary.violations, 1u);
  ASSERT_EQ(verdicts.size(), 1u);
  ASSERT_EQ(verdicts[0].status, WindowVerdict::Status::Violation);
  ASSERT_FALSE(verdicts[0].litmus.empty());
  const auto suite = litmus::parse_suite(verdicts[0].litmus);
  ASSERT_EQ(suite.size(), 1u);
  EXPECT_NE(suite[0].origin.find("renumbered"), std::string::npos);
  const auto sc = models::make_model("SC")->check(suite[0].hist);
  EXPECT_FALSE(sc.allowed);
  EXPECT_FALSE(sc.inconclusive);
}

TEST(StreamingChecker, NeverWrittenReadIsMalformedTrace) {
  TraceHeader header;
  header.procs = 1;
  header.locs = 1;
  StreamingChecker checker(header, {});
  TraceOp op;
  op.kind = OpKind::Read;
  op.value = 99;  // nothing was ever written, ring never evicted
  try {
    checker.feed(op);
    // The throw may also surface at the window close.
    (void)checker.finish();
    FAIL() << "read of a never-written value must be rejected";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("never written"), std::string::npos);
  }
}

TEST(StreamingChecker, RejectsBadConfigAndBadOps) {
  TraceHeader header;
  header.procs = 2;
  header.locs = 2;
  StreamOptions zero;
  zero.window_ops = 0;
  EXPECT_THROW(StreamingChecker(header, zero), InvalidInput);
  StreamOptions unknown;
  unknown.model = "NotAModel";
  EXPECT_THROW(StreamingChecker(header, unknown), InvalidInput);

  StreamingChecker checker(header, {});
  TraceOp op;
  op.kind = OpKind::Write;
  op.proc = 2;  // out of range for procs=2
  EXPECT_THROW(checker.feed(op), InvalidInput);
  op.proc = 0;
  op.loc = 7;
  EXPECT_THROW(checker.feed(op), InvalidInput);
}

}  // namespace
}  // namespace ssm::trace
