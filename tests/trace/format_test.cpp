#include "trace/format.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ssm::trace {
namespace {

TraceOp random_op(Rng& rng) {
  TraceOp op;
  const std::uint64_t k = rng.below(3);
  op.kind = k == 0 ? OpKind::Read
                   : (k == 1 ? OpKind::Write : OpKind::ReadModifyWrite);
  op.label = rng.chance(1, 4) ? OpLabel::Labeled : OpLabel::Ordinary;
  op.proc = static_cast<ProcId>(rng.below(64));
  op.loc = static_cast<LocId>(rng.below(64));
  // Negative and large values must survive the round trip exactly (the
  // generic-parser fallback takes a double path for negatives, so stay
  // within the 2^53 exact range).
  op.value = rng.range(-(1ll << 40), 1ll << 40);
  // rmw_read is only on the wire for rmws; non-rmws must compare equal
  // with the default 0.
  op.rmw_read = op.kind == OpKind::ReadModifyWrite
                    ? rng.range(-(1ll << 40), 1ll << 40)
                    : 0;
  return op;
}

TEST(TraceFormat, OpRoundTripIsIdentity) {
  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    const TraceOp op = random_op(rng);
    const std::string line = op_line(op);
    const TraceOp back = parse_op_line(line, 1);
    EXPECT_EQ(back, op) << line;
  }
}

TEST(TraceFormat, HeaderRoundTripIsIdentity) {
  TraceHeader h;
  h.procs = 4;
  h.locs = 8;
  h.machine = "tso";
  h.seed = 42;
  const TraceHeader back = parse_header_line(header_line(h));
  EXPECT_EQ(back.version, h.version);
  EXPECT_EQ(back.procs, h.procs);
  EXPECT_EQ(back.locs, h.locs);
  EXPECT_EQ(back.machine, h.machine);
  EXPECT_EQ(back.seed, h.seed);

  TraceHeader external;  // no provenance fields
  external.procs = 2;
  external.locs = 3;
  const TraceHeader back2 = parse_header_line(header_line(external));
  EXPECT_EQ(back2.procs, 2u);
  EXPECT_EQ(back2.machine, "");
}

TEST(TraceFormat, AcceptsAnyKeyOrder) {
  const TraceOp op = parse_op_line(
      R"({"v":7,"x":3,"l":1,"k":"u","rv":2,"p":1})", 1);
  EXPECT_EQ(op.kind, OpKind::ReadModifyWrite);
  EXPECT_EQ(op.label, OpLabel::Labeled);
  EXPECT_EQ(op.proc, 1);
  EXPECT_EQ(op.loc, 3);
  EXPECT_EQ(op.value, 7);
  EXPECT_EQ(op.rmw_read, 2);
}

TEST(TraceFormat, ErrorsCarryTheLineNumber) {
  const auto message_of = [](auto fn) -> std::string {
    try {
      fn();
    } catch (const InvalidInput& e) {
      return e.what();
    }
    return "";
  };
  // Truncated mid-object.
  EXPECT_NE(message_of([] { (void)parse_op_line(R"({"p":0,"k":"w")", 17); })
                .find("trace line 17"),
            std::string::npos);
  // Corrupt JSON.
  EXPECT_NE(message_of([] { (void)parse_op_line("not json at all", 5); })
                .find("trace line 5"),
            std::string::npos);
  // Bad header.
  EXPECT_NE(message_of([] { (void)parse_header_line("{}", 3); })
                .find("trace line 3"),
            std::string::npos);
}

TEST(TraceFormat, RejectsUnknownAndMissingKeys) {
  EXPECT_THROW((void)parse_op_line(R"({"p":0,"k":"w","x":0,"v":1,"zz":3})", 1),
               InvalidInput);
  EXPECT_THROW((void)parse_op_line(R"({"p":0,"k":"w","x":0})", 1),
               InvalidInput);
  // rmw requires the read-part value...
  EXPECT_THROW((void)parse_op_line(R"({"p":0,"k":"u","x":0,"v":1})", 1),
               InvalidInput);
  // ...and non-rmws must not carry one.
  EXPECT_THROW((void)parse_op_line(R"({"p":0,"k":"r","x":0,"v":1,"rv":0})", 1),
               InvalidInput);
  EXPECT_THROW((void)parse_op_line(R"({"p":0,"k":"q","x":0,"v":1})", 1),
               InvalidInput);
}

TEST(TraceFormat, RejectsFutureVersionsUpFront) {
  try {
    (void)parse_header_line(R"({"ssm_trace":2,"procs":1,"locs":1})");
    FAIL() << "version 2 must be rejected";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("newer build"), std::string::npos);
  }
}

TEST(TraceFormat, ReaderStreamsAndNumbersLines) {
  std::istringstream in(
      "{\"ssm_trace\":1,\"procs\":1,\"locs\":1}\n"
      "\n"
      "{\"p\":0,\"k\":\"w\",\"x\":0,\"v\":1}\n"
      "{\"p\":0,\"k\":\"r\",\"x\":0,\"v\":1}\n");
  TraceReader reader(in);
  const TraceHeader h = reader.read_header();
  EXPECT_EQ(h.procs, 1u);
  TraceOp op;
  ASSERT_TRUE(reader.next(op));
  EXPECT_EQ(op.kind, OpKind::Write);
  EXPECT_EQ(reader.line_no(), 3u);  // the blank line still counts
  ASSERT_TRUE(reader.next(op));
  EXPECT_EQ(op.kind, OpKind::Read);
  EXPECT_FALSE(reader.next(op));
}

TEST(TraceFormat, ReaderNamesTheCorruptLine) {
  std::istringstream in(
      "{\"ssm_trace\":1,\"procs\":1,\"locs\":1}\n"
      "{\"p\":0,\"k\":\"w\",\"x\":0,\"v\":1}\n"
      "{\"p\":0,\"k\":\"w\",\"x\":0,\"v\":\n");
  TraceReader reader(in);
  (void)reader.read_header();
  TraceOp op;
  ASSERT_TRUE(reader.next(op));
  try {
    (void)reader.next(op);
    FAIL() << "corrupt line must throw";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("trace line 3"), std::string::npos);
  }
}

TEST(TraceFormat, WriterEmitsParseableLines) {
  std::ostringstream out;
  {
    TraceWriter writer(out);
    TraceHeader h;
    h.procs = 2;
    h.locs = 2;
    writer.write_header(h);
    TraceOp op;
    op.kind = OpKind::Write;
    op.value = 9;
    writer.write_op(op);
  }  // dtor flushes
  std::istringstream in(out.str());
  TraceReader reader(in);
  EXPECT_EQ(reader.read_header().procs, 2u);
  TraceOp op;
  ASSERT_TRUE(reader.next(op));
  EXPECT_EQ(op.value, 9);
}

}  // namespace
}  // namespace ssm::trace
