// Peterson's algorithm as a second read/write mutual-exclusion probe:
// safe on SC, violable on the TSO machine (classic store-buffer failure),
// safe again on RC_sc when the synchronization accesses are labeled.
#include <gtest/gtest.h>

#include "bakery/driver.hpp"
#include "models/models.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::bakery {
namespace {

const MachineFactory kScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_sc_machine(p, l);
};
const MachineFactory kTsoFactory = [](std::size_t p, std::size_t l) {
  return sim::make_tso_machine(p, l);
};
const MachineFactory kRcScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_sc_machine(p, l);
};
const MachineFactory kRcPcFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_pc_machine(p, l);
};

sim::SchedulerOptions adversarial() {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 200;
  return opt;
}

TEST(Peterson, SafeOnScMachine) {
  sim::SchedulerOptions opt;
  opt.seed = 3;
  const auto sweep =
      sweep_peterson(kScFactory, PetersonOptions{3, true, false}, opt, 200);
  EXPECT_EQ(sweep.total_violations, 0u);
  EXPECT_EQ(sweep.livelocks, 0u);
}

TEST(Peterson, ViolatedOnTsoMachineAdversarial) {
  // Store buffering defeats the flag handshake: both writes sit in
  // buffers while both processes read stale flags.
  const auto run = run_peterson(
      kTsoFactory, PetersonOptions{1, false, false}, adversarial());
  EXPECT_GT(run.violations, 0u);
}

TEST(Peterson, TsoViolatingTraceRejectedByScModel) {
  const auto run = run_peterson(
      kTsoFactory, PetersonOptions{1, false, false}, adversarial());
  ASSERT_GT(run.violations, 0u);
  ASSERT_FALSE(run.trace.validate().has_value());
  EXPECT_FALSE(models::make_sc()->check(run.trace).allowed);
  EXPECT_TRUE(models::make_tso_fwd()->check(run.trace).allowed);
}

TEST(Peterson, SafeOnRcScMachineWhenLabeled) {
  const auto run = run_peterson(
      kRcScFactory, PetersonOptions{1, true, true}, adversarial());
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.cs_entries, 2u);
}

TEST(Peterson, ViolatedOnRcPcMachineDespiteLabels) {
  // Like Bakery, Peterson distinguishes RC_sc from RC_pc: PC labeled ops
  // allow the store-buffering pattern on the flags.
  const auto run = run_peterson(
      kRcPcFactory, PetersonOptions{1, false, true}, adversarial());
  EXPECT_GT(run.violations, 0u);
}

TEST(Peterson, RandomSweepOnTsoFindsViolations) {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 50;
  opt.seed = 20;
  const auto sweep = sweep_peterson(
      kTsoFactory, PetersonOptions{1, false, false}, opt, 50);
  EXPECT_GT(sweep.violating_runs, 0u);
}

}  // namespace
}  // namespace ssm::bakery
