// Dekker's algorithm: the third read/write mutual-exclusion probe.
#include <gtest/gtest.h>

#include "bakery/driver.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::bakery {
namespace {

const MachineFactory kScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_sc_machine(p, l);
};
const MachineFactory kTsoFactory = [](std::size_t p, std::size_t l) {
  return sim::make_tso_machine(p, l);
};
const MachineFactory kRcScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_sc_machine(p, l);
};
const MachineFactory kRcPcFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_pc_machine(p, l);
};

sim::SchedulerOptions adversarial() {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 200;
  return opt;
}

TEST(Dekker, SafeOnScMachine) {
  sim::SchedulerOptions opt;
  opt.seed = 31;
  const auto sweep =
      sweep_dekker(kScFactory, DekkerOptions{3, true, false}, opt, 200);
  EXPECT_EQ(sweep.total_violations, 0u);
  EXPECT_EQ(sweep.livelocks, 0u);
}

TEST(Dekker, ViolatedOnTsoMachineAdversarial) {
  const auto run = run_dekker(
      kTsoFactory, DekkerOptions{1, true, false}, adversarial());
  EXPECT_GT(run.violations, 0u);
}

TEST(Dekker, SafeOnRcScMachineWhenLabeled) {
  const auto run = run_dekker(
      kRcScFactory, DekkerOptions{1, true, true}, adversarial());
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.cs_entries, 2u);
}

TEST(Dekker, ViolatedOnRcPcMachineDespiteLabels) {
  const auto run = run_dekker(
      kRcPcFactory, DekkerOptions{1, true, true}, adversarial());
  EXPECT_GT(run.violations, 0u);
}

TEST(Dekker, MultipleIterationsStaySafeOnSc) {
  sim::SchedulerOptions opt;
  opt.seed = 77;
  const auto sweep =
      sweep_dekker(kScFactory, DekkerOptions{5, true, false}, opt, 50);
  EXPECT_EQ(sweep.total_violations, 0u);
  EXPECT_EQ(sweep.livelocks, 0u);
}

}  // namespace
}  // namespace ssm::bakery
