// The paper's §5 result, executed: Bakery is safe on RC_sc and violable
// on RC_pc; the violating trace is machine-checked against the
// declarative models.
#include <gtest/gtest.h>

#include "bakery/driver.hpp"
#include "history/print.hpp"
#include "models/models.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"

namespace ssm::bakery {
namespace {

const MachineFactory kScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_sc_machine(p, l);
};
const MachineFactory kRcScFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_sc_machine(p, l);
};
const MachineFactory kRcPcFactory = [](std::size_t p, std::size_t l) {
  return sim::make_rc_pc_machine(p, l);
};

sim::SchedulerOptions adversarial() {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 200;  // keep spin loops live, but delay deliveries
  return opt;
}

TEST(Bakery, SafeOnScMachineRandomSweep) {
  sim::SchedulerOptions opt;
  opt.seed = 1;
  const auto sweep = sweep_bakery(kScFactory, 2, BakeryOptions{3, true},
                                  opt, 200);
  EXPECT_EQ(sweep.total_violations, 0u);
  EXPECT_EQ(sweep.livelocks, 0u);
}

TEST(Bakery, SafeOnRcScMachineRandomSweep) {
  sim::SchedulerOptions opt;
  opt.seed = 2;
  const auto sweep = sweep_bakery(kRcScFactory, 2, BakeryOptions{3, true},
                                  opt, 200);
  EXPECT_EQ(sweep.total_violations, 0u);
}

TEST(Bakery, SafeOnRcScMachineAdversarial) {
  const auto run =
      run_bakery(kRcScFactory, 2, BakeryOptions{1, true}, adversarial());
  EXPECT_EQ(run.violations, 0u);
  EXPECT_FALSE(run.livelock);
  EXPECT_EQ(run.cs_entries, 2u);
}

TEST(Bakery, ViolatedOnRcPcMachineAdversarial) {
  const auto run = run_bakery(kRcPcFactory, 2,
                              BakeryOptions{1, /*exit_protocol=*/false},
                              adversarial());
  EXPECT_GT(run.violations, 0u)
      << "adversarial delay must reproduce the paper's failure";
}

TEST(Bakery, ViolatingTraceIsRcPcLegalAndRcScIllegal) {
  const auto run = run_bakery(kRcPcFactory, 2,
                              BakeryOptions{1, /*exit_protocol=*/false},
                              adversarial());
  ASSERT_GT(run.violations, 0u);
  ASSERT_FALSE(run.trace.validate().has_value())
      << history::format_history(run.trace);
  // The machine's labeled fabric is Goodman-PC; its trace must satisfy
  // RCg, and — this is the paper's point — also RC_pc, while RC_sc must
  // reject it (SC labeled ops would have prevented the double entry).
  EXPECT_TRUE(models::make_rc_goodman()->check(run.trace).allowed)
      << history::format_history(run.trace);
  EXPECT_TRUE(models::make_rc_pc()->check(run.trace).allowed)
      << history::format_history(run.trace);
  EXPECT_FALSE(models::make_rc_sc()->check(run.trace).allowed)
      << history::format_history(run.trace);
}

TEST(Bakery, RcPcRandomSweepFindsViolations) {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 100;
  opt.seed = 10;
  const auto sweep = sweep_bakery(kRcPcFactory, 2,
                                  BakeryOptions{1, false}, opt, 50);
  EXPECT_GT(sweep.violating_runs, 0u);
}

TEST(Bakery, ThreeProcessesSafeOnRcSc) {
  const auto run =
      run_bakery(kRcScFactory, 3, BakeryOptions{2, true}, adversarial());
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.cs_entries, 6u);
}

TEST(Bakery, ThreeProcessesViolableOnRcPc) {
  const auto run = run_bakery(kRcPcFactory, 3, BakeryOptions{1, false},
                              adversarial());
  EXPECT_GT(run.violations, 0u);
}

TEST(Bakery, LongStressStaysSafeOnRcSc) {
  // 4 processes x 10 critical-section entries each, random schedules:
  // no violation, no livelock, and everyone gets in (fairness smoke).
  sim::SchedulerOptions opt;
  opt.seed = 4242;
  for (std::uint64_t r = 0; r < 10; ++r) {
    opt.seed += r;
    const auto run =
        run_bakery(kRcScFactory, 4, BakeryOptions{10, true}, opt);
    EXPECT_EQ(run.violations, 0u);
    EXPECT_FALSE(run.livelock);
    EXPECT_EQ(run.cs_entries, 40u);
  }
}

TEST(Bakery, EagerDeliveryMakesRcPcBehaveWell) {
  // With eager delivery the RC_pc machine degenerates to an SC-like
  // executor; Bakery stays safe (violations need delayed propagation).
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::EagerDelivery;
  const auto sweep =
      sweep_bakery(kRcPcFactory, 2, BakeryOptions{2, true}, opt, 100);
  EXPECT_EQ(sweep.total_violations, 0u);
}

}  // namespace
}  // namespace ssm::bakery
