// The per-execution DRF guarantee, decided empirically: over exhaustive
// labeled universes, every RC_sc-admitted data-race-free history is
// sequentially consistent (the paper's §5 quotes Gibbons, Merritt &
// Gharachorloo [8] for the program-level version of this).
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "litmus/suite.hpp"
#include "models/models.hpp"
#include "race/race.hpp"

namespace ssm::race {
namespace {

struct DrfCounts {
  std::uint64_t total = 0;
  std::uint64_t race_free = 0;
  std::uint64_t rcsc_drf = 0;
  std::uint64_t rcsc_drf_sc = 0;
  std::uint64_t racy_weak = 0;  // racy, RCsc-admitted, NOT SC
};

DrfCounts sweep(const lattice::EnumerationSpec& spec,
                std::string* counterexample) {
  const auto rcsc = models::make_rc_sc();
  const auto sc = models::make_sc();
  DrfCounts c;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    ++c.total;
    const bool drf = is_data_race_free(h);
    if (drf) ++c.race_free;
    const bool rcsc_ok = rcsc->check(h).allowed;
    if (!rcsc_ok) return true;
    const bool sc_ok = sc->check(h).allowed;
    if (drf) {
      ++c.rcsc_drf;
      if (sc_ok) {
        ++c.rcsc_drf_sc;
      } else if (counterexample && counterexample->empty()) {
        *counterexample = history::format_history(h);
      }
    } else if (!sc_ok) {
      ++c.racy_weak;
    }
    return true;
  });
  return c;
}

TEST(DrfTheorem, HoldsOnUnlabeledUniverse) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::string counterexample;
  const auto c = sweep(spec, &counterexample);
  EXPECT_EQ(c.rcsc_drf, c.rcsc_drf_sc)
      << "RCsc-admitted DRF history that is not SC:\n"
      << counterexample;
  // Weak behaviour exists, and only behind races.
  EXPECT_GT(c.racy_weak, 0u);
  EXPECT_GT(c.rcsc_drf, 0u);
}

TEST(DrfTheorem, HoldsOnLabeledUniverse) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  spec.sync_locs = 1;  // location x is a synchronization variable
  std::string counterexample;
  const auto c = sweep(spec, &counterexample);
  EXPECT_EQ(c.rcsc_drf, c.rcsc_drf_sc) << counterexample;
  EXPECT_GT(c.rcsc_drf, 0u);
}

TEST(DrfTheorem, HoldsForWeakOrderingToo) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  spec.sync_locs = 1;
  const auto wo = models::make_weak_ordering();
  const auto sc = models::make_sc();
  std::uint64_t checked = 0;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    if (!is_data_race_free(h)) return true;
    if (!wo->check(h).allowed) return true;
    ++checked;
    EXPECT_TRUE(sc->check(h).allowed) << history::format_history(h);
    return true;
  });
  EXPECT_GT(checked, 0u);
}

TEST(DrfTheorem, RcPcDoesNotEnjoyTheGuaranteeViaBakery) {
  // The §5 Bakery history is racy (the critical-section writes), so the
  // DRF theorem is silent about it — but the deeper point is that the
  // *labeled protocol itself* fails on RC_pc: the history is RC_pc
  // admitted and non-SC.  RC_pc's guarantee requires programs whose
  // correctness never relies on labeled reads/writes alone for mutual
  // exclusion, which Bakery violates.
  const auto& t = ::ssm::litmus::find_test("bakery2-rcpc");
  EXPECT_FALSE(is_data_race_free(t.hist));
  EXPECT_TRUE(models::make_rc_pc()->check(t.hist).allowed);
  EXPECT_FALSE(models::make_sc()->check(t.hist).allowed);
}

}  // namespace
}  // namespace ssm::race
