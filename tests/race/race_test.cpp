#include "race/race.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "litmus/suite.hpp"

namespace ssm::race {
namespace {

using history::HistoryBuilder;

TEST(SynchronizesWith, LinksLabeledWriteToLabeledReader) {
  auto h = HistoryBuilder(2, 2)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .build();
  const auto sw = synchronizes_with(h);
  EXPECT_TRUE(sw.test(0, 1));
  EXPECT_EQ(sw.edge_count(), 1u);
}

TEST(SynchronizesWith, OrdinaryReadsDoNotSynchronize) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "f", 1)
               .r("q", "f", 1)
               .build();
  EXPECT_EQ(synchronizes_with(h).edge_count(), 0u);
}

TEST(Races, UnorderedConflictingWritesRace) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).w("q", "x", 2).build();
  const auto races = find_races(h);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_FALSE(is_data_race_free(h));
  EXPECT_NE(format_races(h, races).find("race:"), std::string::npos);
}

TEST(Races, ReadReadNeverRaces) {
  auto h = HistoryBuilder(2, 1).r("p", "x", 0).r("q", "x", 0).build();
  EXPECT_TRUE(is_data_race_free(h));
}

TEST(Races, SameProcessorNeverRaces) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).w("p", "x", 2).build();
  EXPECT_TRUE(is_data_race_free(h));
}

TEST(Races, ReleaseAcquireOrdersConflictingAccesses) {
  // w(d)1 hb-precedes r(d)1 through the release/acquire pair: race-free.
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .r("q", "d", 1)
               .build();
  EXPECT_TRUE(is_data_race_free(h));
  const auto hb = happens_before(h);
  EXPECT_TRUE(hb.test(0, 3));
}

TEST(Races, BrokenHandshakeStillRaces) {
  // The acquire reads the INITIAL flag value: no sw edge, so the data
  // accesses race.
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 0)
               .r("q", "d", 0)
               .build();
  EXPECT_FALSE(is_data_race_free(h));
}

TEST(Races, PaperFigure1IsRacy) {
  const auto& t = litmus::find_test("fig1-sb");
  EXPECT_FALSE(is_data_race_free(t.hist));
  EXPECT_EQ(find_races(t.hist).size(), 2u);  // x pair and y pair
}

TEST(Races, BakeryCriticalSectionWritesRace) {
  // The §5 violating execution: the two ordinary critical-section writes
  // to `d` are unordered by any sync chain — the violation IS a race.
  const auto& t = litmus::find_test("bakery2-rcpc");
  const auto races = find_races(t.hist);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(t.hist.op(races[0].first).loc,
            t.hist.symbols().location("d"));
}

TEST(Races, TransitiveHbThroughTwoHandshakes) {
  auto h = HistoryBuilder(3, 3)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .wl("q", "g", 1)
               .rl("r", "g", 1)
               .r("r", "d", 1)
               .build();
  EXPECT_TRUE(is_data_race_free(h));
  EXPECT_TRUE(happens_before(h).test(0, 5));
}

}  // namespace
}  // namespace ssm::race
