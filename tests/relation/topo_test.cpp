#include "relation/topo.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssm::rel {
namespace {

DynBitset full(std::size_t n) {
  DynBitset b(n);
  for (std::size_t i = 0; i < n; ++i) b.set(i);
  return b;
}

TEST(Topo, TotalOrderHasOneExtension) {
  Relation r(3);
  r.add(0, 1);
  r.add(1, 2);
  EXPECT_EQ(count_linear_extensions(r, full(3), 100), 1u);
}

TEST(Topo, EmptyRelationHasFactorialExtensions) {
  Relation r(4);
  EXPECT_EQ(count_linear_extensions(r, full(4), 100), 24u);
}

TEST(Topo, CycleHasNoExtensions) {
  Relation r(3);
  r.add(0, 1);
  r.add(1, 2);
  r.add(2, 0);
  EXPECT_EQ(count_linear_extensions(r, full(3), 100), 0u);
}

TEST(Topo, ExtensionsRespectEdges) {
  Relation r(4);
  r.add(0, 2);
  r.add(1, 3);
  std::set<std::vector<std::size_t>> seen;
  for_each_linear_extension(r, full(4),
                            [&](const std::vector<std::size_t>& ext) {
                              seen.insert(ext);
                              std::size_t pos0 = 0, pos2 = 0, pos1 = 0,
                                          pos3 = 0;
                              for (std::size_t k = 0; k < ext.size(); ++k) {
                                if (ext[k] == 0) pos0 = k;
                                if (ext[k] == 1) pos1 = k;
                                if (ext[k] == 2) pos2 = k;
                                if (ext[k] == 3) pos3 = k;
                              }
                              EXPECT_LT(pos0, pos2);
                              EXPECT_LT(pos1, pos3);
                              return true;
                            });
  EXPECT_EQ(seen.size(), 6u);  // 4!/(2*2) = 6
}

TEST(Topo, EarlyStopReported) {
  Relation r(3);
  int visits = 0;
  const bool stopped = for_each_linear_extension(
      r, full(3), [&](const std::vector<std::size_t>&) {
        return ++visits < 2;
      });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(visits, 2);
}

TEST(Topo, SubsetUniverse) {
  Relation r(5);
  r.add(1, 3);
  DynBitset universe(5);
  universe.set(1);
  universe.set(3);
  universe.set(4);
  EXPECT_EQ(count_linear_extensions(r, universe, 100), 3u);
}

TEST(Topo, OneLinearExtensionDeterministic) {
  Relation r(4);
  r.add(2, 0);
  r.add(3, 1);
  const auto ext = one_linear_extension(r, full(4));
  ASSERT_EQ(ext.size(), 4u);
  // Kahn with smallest-first tie-break: 2 before 0, 3 before 1.
  std::size_t pos[4];
  for (std::size_t k = 0; k < 4; ++k) pos[ext[k]] = k;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[3], pos[1]);
}

TEST(Topo, OneLinearExtensionCycleEmpty) {
  Relation r(2);
  r.add(0, 1);
  r.add(1, 0);
  EXPECT_TRUE(one_linear_extension(r, full(2)).empty());
}

}  // namespace
}  // namespace ssm::rel
