#include "relation/relation.hpp"

#include <gtest/gtest.h>

namespace ssm::rel {
namespace {

TEST(Relation, AddTestRemove) {
  Relation r(5);
  EXPECT_FALSE(r.test(0, 1));
  r.add(0, 1);
  EXPECT_TRUE(r.test(0, 1));
  EXPECT_FALSE(r.test(1, 0));
  r.remove(0, 1);
  EXPECT_FALSE(r.test(0, 1));
}

TEST(Relation, TransitiveClosureChain) {
  Relation r(4);
  r.add(0, 1);
  r.add(1, 2);
  r.add(2, 3);
  const Relation c = r.transitive_closure();
  EXPECT_TRUE(c.test(0, 3));
  EXPECT_TRUE(c.test(0, 2));
  EXPECT_TRUE(c.test(1, 3));
  EXPECT_FALSE(c.test(3, 0));
  EXPECT_FALSE(c.test(0, 0));
}

TEST(Relation, TransitiveClosureDiamond) {
  Relation r(4);
  r.add(0, 1);
  r.add(0, 2);
  r.add(1, 3);
  r.add(2, 3);
  const Relation c = r.transitive_closure();
  EXPECT_TRUE(c.test(0, 3));
  EXPECT_FALSE(c.test(1, 2));
  EXPECT_FALSE(c.test(2, 1));
}

TEST(Relation, AcyclicDetection) {
  Relation r(3);
  r.add(0, 1);
  r.add(1, 2);
  EXPECT_TRUE(r.is_acyclic());
  r.add(2, 0);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(Relation, SelfLoopIsCycle) {
  Relation r(2);
  r.add(1, 1);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(Relation, UnionCombinesEdges) {
  Relation a(3), b(3);
  a.add(0, 1);
  b.add(1, 2);
  const Relation u = a | b;
  EXPECT_TRUE(u.test(0, 1));
  EXPECT_TRUE(u.test(1, 2));
  EXPECT_EQ(u.edge_count(), 2u);
}

TEST(Relation, UnionSizeMismatchThrows) {
  Relation a(3), b(4);
  EXPECT_THROW(a |= b, InvalidInput);
}

TEST(Relation, RestrictedToKeepsOnlyInternalEdges) {
  Relation r(4);
  r.add(0, 1);
  r.add(1, 2);
  r.add(2, 3);
  DynBitset keep(4);
  keep.set(1);
  keep.set(2);
  const Relation s = r.restricted_to(keep);
  EXPECT_TRUE(s.test(1, 2));
  EXPECT_FALSE(s.test(0, 1));
  EXPECT_FALSE(s.test(2, 3));
}

TEST(Relation, IndegreesRespectUniverse) {
  Relation r(4);
  r.add(0, 2);
  r.add(1, 2);
  r.add(2, 3);
  DynBitset universe(4);
  universe.set(1);
  universe.set(2);
  universe.set(3);
  const auto deg = r.indegrees(universe);
  EXPECT_EQ(deg[1], 0u);
  EXPECT_EQ(deg[2], 1u);  // only 1->2 counts; 0 is outside the universe
  EXPECT_EQ(deg[3], 1u);
}

}  // namespace
}  // namespace ssm::rel
