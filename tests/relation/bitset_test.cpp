#include "relation/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ssm::rel {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset b(100);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(0));
  b.reset(64);
  EXPECT_FALSE(b.test(64));
}

TEST(DynBitset, CountAndAny) {
  DynBitset b(70);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(69);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_TRUE(b.any());
}

TEST(DynBitset, UnionIntersectDifference) {
  DynBitset a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  DynBitset u = a;
  u |= b;
  EXPECT_TRUE(u.test(1) && u.test(2) && u.test(3));
  DynBitset i = a;
  i &= b;
  EXPECT_FALSE(i.test(1));
  EXPECT_TRUE(i.test(2));
  DynBitset d = a;
  d -= b;
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(2));
}

TEST(DynBitset, SubsetAndIntersects) {
  DynBitset a(10), b(10);
  a.set(1);
  b.set(1);
  b.set(5);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  DynBitset c(10);
  c.set(9);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(c.subset_of(c));
}

TEST(DynBitset, ForEachVisitsInOrder) {
  DynBitset b(130);
  b.set(3);
  b.set(64);
  b.set(129);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 129}));
}

TEST(DynBitset, EqualityAndHash) {
  DynBitset a(50), b(50);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(11);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(DynBitset, ClearResetsEverything) {
  DynBitset b(65);
  b.set(0);
  b.set(64);
  b.clear();
  EXPECT_TRUE(b.none());
}

}  // namespace
}  // namespace ssm::rel
