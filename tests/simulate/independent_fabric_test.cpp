// The Independent propagation mode of CoherentMemory: out-of-order
// delivery, arrival watermarks, release dependencies, acquire
// dependencies — the operational bracket conditions.
#include <gtest/gtest.h>

#include "simulate/coherent_memory.hpp"

namespace ssm::sim {
namespace {

constexpr OpLabel kOrd = OpLabel::Ordinary;
constexpr OpLabel kLab = OpLabel::Labeled;

CoherentMemory independent(std::size_t procs, std::size_t locs) {
  return CoherentMemory(procs, locs,
                        CoherentMemory::Propagation::Independent);
}

TEST(IndependentFabric, OrdinaryUpdatesCanOvertake) {
  auto m = independent(2, 2);
  m.write(0, 0, 1, kOrd);  // data
  m.write(0, 1, 2, kOrd);  // flag (ordinary!)
  // Both in flight; BOTH must be deliverable (no FIFO coupling).
  EXPECT_EQ(m.num_internal_events(), 2u);
  // Deliver the SECOND update (the flag) first.
  m.fire_internal_event(1);
  EXPECT_EQ(m.read(1, 1, kOrd), 2);  // flag visible...
  EXPECT_EQ(m.read(1, 0, kOrd), 0);  // ...data still stale
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
}

TEST(IndependentFabric, PerSenderFifoStillCouples) {
  CoherentMemory m(2, 2);  // default FIFO mode
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kOrd);
  // Only the head is deliverable.
  EXPECT_EQ(m.num_internal_events(), 1u);
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 1, kOrd), 0);
}

TEST(IndependentFabric, ReleaseWaitsForPriorUpdates) {
  auto m = independent(2, 2);
  m.write(0, 0, 1, kOrd);  // data
  m.write(0, 1, 2, kLab);  // RELEASE: depends on the data
  // Only the data is deliverable; the release is blocked.
  EXPECT_EQ(m.num_internal_events(), 1u);
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 1, kLab), 0);  // release not yet applied
  EXPECT_EQ(m.num_internal_events(), 1u);
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 1, kLab), 2);
}

TEST(IndependentFabric, AcquireDependencyCarriesToLaterWrites) {
  auto m = independent(3, 3);
  // p0 releases flag (loc 1) after data (loc 0).
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kLab);
  m.drain();
  // p1 acquires the flag, then writes g (loc 2).
  EXPECT_EQ(m.read(1, 1, kLab), 2);
  m.write(1, 2, 3, kOrd);
  // p2 has p0's updates already (drained); p1's g is deliverable.
  EXPECT_GE(m.num_internal_events(), 1u);
  m.drain();
  EXPECT_EQ(m.read(2, 2, kOrd), 3);
  EXPECT_EQ(m.read(2, 0, kOrd), 1);
}

TEST(IndependentFabric, AcquireDependencyBlocksUntilSourceArrives) {
  auto m = independent(3, 3);
  m.write(0, 0, 1, kOrd);   // p0 data, in flight to p1 and p2
  // Deliver p0's data to p1 ONLY.  Events scan sender-major: channel
  // (0 -> 1) first, then (0 -> 2).
  m.fire_internal_event(0);
  ASSERT_EQ(m.read(1, 0, kOrd), 1);
  // p1 acquires the data value, then writes g.
  (void)m.read(1, 0, kLab);  // labeled read: installs the dependency
  m.write(1, 2, 3, kOrd);
  // p2 must not apply g before p0's data arrives at p2.
  // Deliverable events for p2: p0's data yes; p1's g NO (dep on p0 seq1).
  std::size_t before = m.num_internal_events();
  EXPECT_GE(before, 1u);
  // Drain everything; g must land after the data everywhere.
  m.drain();
  EXPECT_EQ(m.read(2, 2, kOrd), 3);
  EXPECT_EQ(m.read(2, 0, kOrd), 1);
}

TEST(IndependentFabric, WatermarkClosesGapsFromEarlyArrivals) {
  auto m = independent(2, 3);
  m.write(0, 0, 1, kOrd);  // seq 1
  m.write(0, 1, 2, kOrd);  // seq 2
  m.write(0, 2, 3, kLab);  // seq 3: release, dep on seqs 1-2
  // Deliver seq 2 first (early arrival), then seq 1 (closes the gap),
  // after which the release becomes deliverable.
  EXPECT_EQ(m.num_internal_events(), 2u);  // seqs 1 and 2 only
  m.fire_internal_event(1);                // seq 2 early
  EXPECT_EQ(m.read(1, 1, kOrd), 2);
  EXPECT_EQ(m.num_internal_events(), 1u);  // still just seq 1
  m.fire_internal_event(0);                // seq 1 closes the gap
  EXPECT_EQ(m.num_internal_events(), 1u);  // release unblocked
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 2, kLab), 3);
}

TEST(IndependentFabric, FlushFromDeliversEverythingInOrder) {
  auto m = independent(2, 2);
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kLab);  // release depends on data
  m.flush_from(0);
  EXPECT_EQ(m.num_internal_events(), 0u);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 1, kLab), 2);
}

}  // namespace
}  // namespace ssm::sim
