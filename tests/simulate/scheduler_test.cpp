#include "simulate/scheduler.hpp"

#include <gtest/gtest.h>

#include "history/print.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::sim {
namespace {

Program two_writes(LocId a, LocId b) {
  co_await write(a, 1);
  co_await write(b, 2);
}

Program reader(LocId loc, Value* out) {
  *out = co_await read(loc);
}

TEST(Scheduler, RunsAllProgramsToCompletion) {
  ScMemory m(2, 2);
  Scheduler s(m, {});
  s.add_program(two_writes(0, 1));
  Value seen = -1;
  s.add_program(reader(0, &seen));
  const RunResult r = s.run();
  EXPECT_FALSE(r.livelock);
  EXPECT_EQ(r.trace.size(), 3u);
  EXPECT_TRUE(seen == 0 || seen == 1);
}

TEST(Scheduler, TraceRecordsProgramOrder) {
  ScMemory m(1, 2);
  Scheduler s(m, {});
  s.add_program(two_writes(0, 1));
  const RunResult r = s.run();
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace.op(0).loc, 0);
  EXPECT_EQ(r.trace.op(1).loc, 1);
  EXPECT_EQ(r.trace.op(0).seq, 0u);
  EXPECT_EQ(r.trace.op(1).seq, 1u);
}

TEST(Scheduler, DeterministicForFixedSeed) {
  auto run_once = [] {
    TsoMemory m(2, 2);
    SchedulerOptions opt;
    opt.seed = 99;
    Scheduler s(m, opt);
    s.add_program(two_writes(0, 1));
    s.add_program(two_writes(1, 0));
    return history::format_history(s.run().trace);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, MachineDrainedAtEnd) {
  TsoMemory m(1, 1);
  Scheduler s(m, {});
  s.add_program(two_writes(0, 0));
  (void)s.run();
  EXPECT_EQ(m.num_internal_events(), 0u);
  EXPECT_EQ(m.read(0, 0, OpLabel::Ordinary), 2);
}

TEST(Scheduler, CsObserverSeesAnnotations) {
  ScMemory m(1, 1);
  Scheduler s(m, {});
  int enters = 0, exits = 0;
  s.set_cs_observer([&](ProcId, bool entering) {
    if (entering) {
      ++enters;
    } else {
      ++exits;
    }
  });
  s.add_program([]() -> Program {
    co_await enter_cs();
    co_await write(0, 1);
    co_await exit_cs();
  }());
  const RunResult r = s.run();
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(r.trace.size(), 1u);  // annotations are not memory ops
}

TEST(Scheduler, LivelockGuardTriggers) {
  ScMemory m(1, 1);
  SchedulerOptions opt;
  opt.max_steps = 100;
  Scheduler s(m, opt);
  s.add_program([]() -> Program {
    while (true) {
      const Value v = co_await read(0);
      if (v == 42) break;  // never written
    }
  }());
  const RunResult r = s.run();
  EXPECT_TRUE(r.livelock);
}

TEST(Scheduler, DelayDeliveryKeepsUpdatesPendingInitially) {
  TsoMemory m(2, 2);
  SchedulerOptions opt;
  opt.policy = Policy::DelayDelivery;
  opt.max_spin = 0;  // never force
  Scheduler s(m, opt);
  Value p_saw = -1, q_saw = -1;
  s.add_program([](Value* out) -> Program {
    co_await write(0, 1);
    *out = co_await read(1);
  }(&p_saw));
  s.add_program([](Value* out) -> Program {
    co_await write(1, 2);
    *out = co_await read(0);
  }(&q_saw));
  (void)s.run();
  // Under full delay both reads miss the other's buffered write: the
  // store-buffering outcome, impossible under SC.
  EXPECT_EQ(p_saw, 0);
  EXPECT_EQ(q_saw, 0);
}

}  // namespace
}  // namespace ssm::sim
