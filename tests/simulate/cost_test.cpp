// Cost model: classification sanity per machine and the motivation shape
// (stronger consistency costs at least as much as weaker, and the gap
// widens with interconnect latency).
#include "simulate/cost_model.hpp"

#include <gtest/gtest.h>

#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::sim {
namespace {

constexpr OpLabel kOrd = OpLabel::Ordinary;
constexpr OpLabel kLab = OpLabel::Labeled;

TEST(Classify, ScIsAlwaysGlobal) {
  ScMemory m(2, 2);
  EXPECT_EQ(m.classify(0, OpKind::Read, 0, kOrd), OpCost::Global);
  EXPECT_EQ(m.classify(0, OpKind::Write, 0, kOrd), OpCost::Global);
}

TEST(Classify, TsoBufferHitIsLocal) {
  TsoMemory m(2, 2);
  EXPECT_EQ(m.classify(0, OpKind::Write, 0, kOrd), OpCost::Local);
  EXPECT_EQ(m.classify(0, OpKind::Read, 0, kOrd), OpCost::Memory);
  m.write(0, 0, 1, kOrd);
  EXPECT_EQ(m.classify(0, OpKind::Read, 0, kOrd), OpCost::Local);
  EXPECT_EQ(m.classify(1, OpKind::Read, 0, kOrd), OpCost::Memory);
  EXPECT_EQ(m.classify(0, OpKind::ReadModifyWrite, 0, kOrd),
            OpCost::GlobalFlush);
}

TEST(Classify, ReplicaMachinesAreLocal) {
  PramMemory pram(2, 2);
  CausalMemory causal(2, 2);
  CoherentMemory coherent(2, 2);
  for (Machine* m : {static_cast<Machine*>(&pram),
                     static_cast<Machine*>(&causal),
                     static_cast<Machine*>(&coherent)}) {
    EXPECT_EQ(m->classify(0, OpKind::Read, 0, kOrd), OpCost::Local);
    EXPECT_EQ(m->classify(0, OpKind::Write, 0, kOrd), OpCost::Local);
    EXPECT_EQ(m->classify(0, OpKind::ReadModifyWrite, 0, kOrd),
              OpCost::GlobalFlush);
  }
}

TEST(Classify, RcVariantsDifferOnLabeledOps) {
  RcMemory sc_variant(2, 2, RcMemory::Variant::Sc);
  RcMemory pc_variant(2, 2, RcMemory::Variant::Pc);
  // Ordinary accesses local on both.
  EXPECT_EQ(sc_variant.classify(0, OpKind::Write, 0, kOrd), OpCost::Local);
  EXPECT_EQ(pc_variant.classify(0, OpKind::Write, 0, kOrd), OpCost::Local);
  // Labeled: SC variant pays; PC variant stays local.
  EXPECT_EQ(sc_variant.classify(0, OpKind::Read, 0, kLab), OpCost::Global);
  EXPECT_EQ(sc_variant.classify(0, OpKind::Write, 0, kLab),
            OpCost::GlobalFlush);
  EXPECT_EQ(pc_variant.classify(0, OpKind::Read, 0, kLab), OpCost::Local);
}

TEST(CostModel, ParamsPriceClasses) {
  CostParams p;
  p.local = 1;
  p.memory = 10;
  p.interconnect = 100;
  p.per_flush_entry = 5;
  EXPECT_EQ(p.cycles(OpCost::Local, 7), 1u);
  EXPECT_EQ(p.cycles(OpCost::Memory, 7), 10u);
  EXPECT_EQ(p.cycles(OpCost::Global, 7), 100u);
  EXPECT_EQ(p.cycles(OpCost::GlobalFlush, 7), 135u);
}

Plan drf_plan() {
  WorkloadSpec spec;
  spec.procs = 3;
  spec.locs = 4;
  spec.ops_per_proc = 24;
  spec.sync_locs = 1;
  Rng rng(99);
  return make_plan(spec, rng);
}

TEST(CostModel, MeasureCountsEveryOperation) {
  const auto plan = drf_plan();
  std::size_t planned = 0;
  for (const auto& row : plan) planned += row.size();
  const auto report = measure_workload(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); },
      plan, 4, CostParams{}, 3);
  EXPECT_EQ(report.ops, planned);
  EXPECT_EQ(report.global_ops, planned);  // SC: everything global
  EXPECT_EQ(report.local_ops, 0u);
}

TEST(CostModel, MotivationShapeHolds) {
  const auto plan = drf_plan();
  CostParams params;
  params.interconnect = 200;
  params.memory = 40;
  auto measure = [&](CostFactory f) {
    return measure_workload(f, plan, 4, params, 3).cycles_per_op();
  };
  const double sc = measure(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); });
  const double tso = measure(
      [](std::size_t p, std::size_t l) { return make_tso_machine(p, l); });
  const double rcsc = measure([](std::size_t p, std::size_t l) {
    return make_rc_sc_machine(p, l);
  });
  const double rcpc = measure([](std::size_t p, std::size_t l) {
    return make_rc_pc_machine(p, l);
  });
  const double pram = measure(
      [](std::size_t p, std::size_t l) { return make_pram_machine(p, l); });
  // The paper's motivation, as ordering: SC most expensive; TSO and RC_sc
  // both far cheaper (their relative order is workload-dependent — TSO
  // pays on read misses, RC_sc on sync ops); RC_pc and PRAM near-local.
  EXPECT_GT(sc, tso);
  EXPECT_GT(sc, rcsc);
  EXPECT_GT(rcsc, rcpc);
  EXPECT_GT(tso, rcpc);
  EXPECT_GE(rcpc, pram);
  EXPECT_NEAR(pram, 1.0, 0.5);  // replica-local workload
}

TEST(CostModel, GapWidensWithLatency) {
  const auto plan = drf_plan();
  auto ratio = [&](std::uint64_t lat) {
    CostParams params;
    params.interconnect = lat;
    params.memory = lat / 5 + 1;
    const double sc = measure_workload(
        [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); },
        plan, 4, params, 3).cycles_per_op();
    const double pram = measure_workload(
        [](std::size_t p, std::size_t l) {
          return make_pram_machine(p, l);
        },
        plan, 4, params, 3).cycles_per_op();
    return sc / pram;
  };
  EXPECT_GT(ratio(1000), ratio(10));
}

}  // namespace
}  // namespace ssm::sim
