// Scheduler policy behaviours and the program-level cost driver.
#include <gtest/gtest.h>

#include "simulate/cost_model.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::sim {
namespace {

Program writer_then_reader(LocId w, LocId r, Value* out) {
  co_await write(w, 1);
  *out = co_await read(r);
}

TEST(Policy, EagerDeliveryBehavesSequentially) {
  // Under eager delivery the TSO machine cannot exhibit store buffering:
  // at least one of the two reads must see the other's write.
  int sb_outcomes = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    TsoMemory m(2, 2);
    SchedulerOptions opt;
    opt.policy = Policy::EagerDelivery;
    opt.seed = seed;
    Scheduler s(m, opt);
    Value p_saw = -1, q_saw = -1;
    s.add_program(writer_then_reader(0, 1, &p_saw));
    s.add_program(writer_then_reader(1, 0, &q_saw));
    (void)s.run();
    if (p_saw == 0 && q_saw == 0) ++sb_outcomes;
  }
  EXPECT_EQ(sb_outcomes, 0);
}

TEST(Policy, RandomPolicyFindsStoreBufferingEventually) {
  int sb_outcomes = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    TsoMemory m(2, 2);
    SchedulerOptions opt;
    opt.seed = seed;
    Scheduler s(m, opt);
    Value p_saw = -1, q_saw = -1;
    s.add_program(writer_then_reader(0, 1, &p_saw));
    s.add_program(writer_then_reader(1, 0, &q_saw));
    (void)s.run();
    if (p_saw == 0 && q_saw == 0) ++sb_outcomes;
  }
  EXPECT_GT(sb_outcomes, 0);
}

TEST(Policy, InternalEventCountersReported) {
  PramMemory m(2, 1);
  SchedulerOptions opt;
  opt.seed = 3;
  Scheduler s(m, opt);
  Value sink = 0;
  s.add_program(writer_then_reader(0, 0, &sink));
  s.add_program(writer_then_reader(0, 0, &sink));
  // Invalid: both write 1 to loc 0 — fine for the machine, just not for
  // declarative checking; here we only care about counters.
  const auto run = s.run();
  EXPECT_GT(run.steps, 0u);
  EXPECT_GE(run.internal_events, 2u);  // both writes delivered eventually
}

TEST(CostDriver, MeasureProgramsHandlesSpinLoops) {
  // A consumer spinning on a flag completes (background deliveries) and
  // its spin reads are counted as operations.
  const auto report = measure_programs(
      [](std::size_t p, std::size_t l) { return make_pram_machine(p, l); },
      [](std::uint32_t i) -> Program {
        if (i == 0) {
          return []() -> Program {
            co_await write(0, 1);
          }();
        }
        return []() -> Program {
          while (true) {
            const Value v = co_await read(0);
            if (v == 1) break;
          }
        }();
      },
      2, 1, CostParams{}, 5);
  EXPECT_GE(report.ops, 2u);
  EXPECT_EQ(report.global_ops, 0u);  // PRAM: everything local
}

TEST(CostDriver, MaxOpsGuardStopsRunaways) {
  const auto report = measure_programs(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); },
      [](std::uint32_t) -> Program {
        return []() -> Program {
          while (true) {
            const Value v = co_await read(0);
            if (v == 42) break;  // never written
          }
        }();
      },
      1, 1, CostParams{}, 1, /*max_ops=*/500);
  EXPECT_EQ(report.ops, 500u);
}

}  // namespace
}  // namespace ssm::sim
