#include <gtest/gtest.h>

#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::sim {
namespace {

constexpr OpLabel kOrd = OpLabel::Ordinary;
constexpr OpLabel kLab = OpLabel::Labeled;

TEST(ScMachine, ImmediateVisibility) {
  ScMemory m(2, 2);
  m.write(0, 0, 5, kOrd);
  EXPECT_EQ(m.read(1, 0, kOrd), 5);
  EXPECT_EQ(m.num_internal_events(), 0u);
}

TEST(ScMachine, RmwReturnsOld) {
  ScMemory m(1, 1);
  m.write(0, 0, 3, kOrd);
  EXPECT_EQ(m.rmw(0, 0, 7, kOrd), 3);
  EXPECT_EQ(m.read(0, 0, kOrd), 7);
}

TEST(TsoMachine, WriteBuffersUntilDrain) {
  TsoMemory m(2, 2);
  m.write(0, 0, 1, kOrd);
  EXPECT_EQ(m.read(0, 0, kOrd), 1);  // forwarding from own buffer
  EXPECT_EQ(m.read(1, 0, kOrd), 0);  // not yet globally visible
  EXPECT_EQ(m.num_internal_events(), 1u);
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.num_internal_events(), 0u);
}

TEST(TsoMachine, BufferIsFifo) {
  TsoMemory m(2, 1);
  m.write(0, 0, 1, kOrd);
  m.write(0, 0, 2, kOrd);
  EXPECT_EQ(m.read(0, 0, kOrd), 2);  // newest buffered value
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);  // head drained first
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 2);
}

TEST(TsoMachine, RmwDrainsOwnBuffer) {
  TsoMemory m(2, 2);
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kOrd);
  EXPECT_EQ(m.rmw(0, 1, 9, kOrd), 2);  // sees own drained write
  EXPECT_EQ(m.read(1, 0, kOrd), 1);    // earlier write drained too
  EXPECT_EQ(m.read(1, 1, kOrd), 9);
}

TEST(PramMachine, UpdatesDelayedPerReceiver) {
  PramMemory m(3, 1);
  m.write(0, 0, 1, kOrd);
  EXPECT_EQ(m.read(0, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 0, kOrd), 0);
  EXPECT_EQ(m.read(2, 0, kOrd), 0);
  EXPECT_EQ(m.num_internal_events(), 2u);  // one channel per other proc
  m.drain();
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(2, 0, kOrd), 1);
}

TEST(PramMachine, PerSenderFifoPreserved) {
  PramMemory m(2, 2);
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kOrd);
  // Deliver only the first update to q.
  m.fire_internal_event(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 1, kOrd), 0);  // second still in flight
}

TEST(PramMachine, CrossUpdatesCanInterleave) {
  // The PRAM signature: both writers see their own value first (fig. 3).
  PramMemory m(2, 1);
  m.write(0, 0, 1, kOrd);
  m.write(1, 0, 2, kOrd);
  EXPECT_EQ(m.read(0, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 0, kOrd), 2);
  m.drain();
  // After delivery each replica holds the other's (later-applied) value.
  const Value v0 = m.read(0, 0, kOrd);
  const Value v1 = m.read(1, 0, kOrd);
  EXPECT_EQ(v0, 2);
  EXPECT_EQ(v1, 1);
}

TEST(CausalMachine, DeliveryRespectsCausality) {
  CausalMemory m(3, 2);
  // p writes x=1; q reads it (after delivery) then writes y=1.
  m.write(0, 0, 1, kOrd);
  m.drain();
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  m.write(1, 1, 1, kOrd);
  // r must not apply q's y=1 before p's x=1: both are pending for r only
  // if x=1 was undelivered — here we drained, so just check delivery.
  m.drain();
  EXPECT_EQ(m.read(2, 1, kOrd), 1);
  EXPECT_EQ(m.read(2, 0, kOrd), 1);
}

TEST(CausalMachine, DependentUpdateWaitsForDependency) {
  CausalMemory m(3, 2);
  m.write(0, 0, 1, kOrd);  // x=1 in flight to q and r
  // Deliver x=1 to q only (its inbox event), then q writes y=1.
  // Find and fire q's delivery: events are enumerated receiver-major.
  ASSERT_GE(m.num_internal_events(), 1u);
  m.fire_internal_event(0);  // first ready event: q receives x=1
  if (m.read(1, 0, kOrd) != 1) {
    // The first event went to r; fire the next for q.
    m.fire_internal_event(0);
  }
  ASSERT_EQ(m.read(1, 0, kOrd), 1);
  m.write(1, 1, 1, kOrd);
  // r now has two pending updates; y=1 depends on x=1.  The causally
  // ready set for r must not contain y=1 until x=1 is applied.
  while (m.read(2, 1, kOrd) != 1) {
    ASSERT_GT(m.num_internal_events(), 0u);
    m.fire_internal_event(0);
    if (m.read(2, 1, kOrd) == 1) {
      // y visible at r implies x visible at r (causal delivery).
      EXPECT_EQ(m.read(2, 0, kOrd), 1);
    }
  }
}

TEST(CoherentMachine, StaleVersionsDiscarded) {
  CoherentMemory m(3, 1);
  m.write(0, 0, 1, kOrd);  // version 1
  m.write(1, 0, 2, kOrd);  // version 2
  // Deliver version 2 to p first: p's replica moves to 2; version 1
  // arriving later at r... deliver all and check agreement.
  m.drain();
  EXPECT_EQ(m.read(0, 0, kOrd), 2);
  EXPECT_EQ(m.read(2, 0, kOrd), 2);
  // q wrote version 2 and never saw version 1 (discarded as stale).
  EXPECT_EQ(m.read(1, 0, kOrd), 2);
}

TEST(CoherentMachine, FlushFromDeliversSendersUpdates) {
  CoherentMemory m(2, 2);
  m.write(0, 0, 1, kOrd);
  m.write(0, 1, 2, kOrd);
  EXPECT_EQ(m.read(1, 0, kOrd), 0);
  m.flush_from(0);
  EXPECT_EQ(m.read(1, 0, kOrd), 1);
  EXPECT_EQ(m.read(1, 1, kOrd), 2);
  EXPECT_EQ(m.num_internal_events(), 0u);
}

TEST(RcScMachine, LabeledOpsImmediatelyVisible) {
  RcMemory m(2, 2, RcMemory::Variant::Sc);
  m.write(0, 0, 1, kLab);
  EXPECT_EQ(m.read(1, 0, kLab), 1);  // sync store is SC
}

TEST(RcScMachine, ReleaseFlushesOrdinaryData) {
  RcMemory m(2, 2, RcMemory::Variant::Sc);
  m.write(0, 0, 7, kOrd);            // data
  EXPECT_EQ(m.read(1, 0, kOrd), 0);  // not yet delivered
  m.write(0, 1, 1, kLab);            // release
  EXPECT_EQ(m.read(1, 0, kOrd), 7);  // data published by the release
}

TEST(RcPcMachine, LabeledWritesCanBeStale) {
  RcMemory m(2, 2, RcMemory::Variant::Pc);
  m.write(0, 0, 1, kLab);
  EXPECT_EQ(m.read(1, 0, kLab), 0);  // in flight: PC labeled ops
  m.drain();
  EXPECT_EQ(m.read(1, 0, kLab), 1);
}

TEST(RcScMachine, LabeledRmwAtomic) {
  RcMemory m(2, 1, RcMemory::Variant::Sc);
  EXPECT_EQ(m.rmw(0, 0, 1, kLab), 0);
  EXPECT_EQ(m.rmw(1, 0, 2, kLab), 1);
}

}  // namespace
}  // namespace ssm::sim
