#include "simulate/workload.hpp"

#include <gtest/gtest.h>

#include <map>

#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"

namespace ssm::sim {
namespace {

TEST(Workload, PlanShapeMatchesSpec) {
  WorkloadSpec spec;
  spec.procs = 3;
  spec.locs = 4;
  spec.ops_per_proc = 10;
  Rng rng(1);
  const Plan plan = make_plan(spec, rng);
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& row : plan) {
    EXPECT_EQ(row.size(), 10u);
    for (const auto& op : row) {
      EXPECT_LT(op.loc, 4);
    }
  }
}

TEST(Workload, WriteValuesDistinctPerLocation) {
  WorkloadSpec spec;
  spec.procs = 4;
  spec.locs = 3;
  spec.ops_per_proc = 12;
  spec.write_percent = 80;
  Rng rng(5);
  const Plan plan = make_plan(spec, rng);
  std::map<LocId, std::set<Value>> seen;
  for (const auto& row : plan) {
    for (const auto& op : row) {
      if (!op.is_write) continue;
      EXPECT_TRUE(seen[op.loc].insert(op.value).second)
          << "duplicate write value " << op.value << " at loc " << op.loc;
      EXPECT_NE(op.value, kInitialValue);
    }
  }
}

TEST(Workload, SyncLocationsAreLabeledAndSingleWriter) {
  WorkloadSpec spec;
  spec.procs = 3;
  spec.locs = 4;
  spec.ops_per_proc = 20;
  spec.sync_locs = 2;
  Rng rng(9);
  const Plan plan = make_plan(spec, rng);
  for (std::size_t p = 0; p < plan.size(); ++p) {
    for (const auto& op : plan[p]) {
      if (op.loc < 2) {
        EXPECT_EQ(op.label, OpLabel::Labeled);
        if (op.is_write) {
          EXPECT_EQ(op.loc % spec.procs, p) << "sync loc written by "
                                            << "non-owner";
        }
      } else {
        EXPECT_EQ(op.label, OpLabel::Ordinary);
      }
    }
  }
}

TEST(Workload, RunPlanExecutesAllOps) {
  WorkloadSpec spec;
  spec.procs = 2;
  spec.locs = 2;
  spec.ops_per_proc = 6;
  Rng rng(3);
  const Plan plan = make_plan(spec, rng);
  ScMemory m(2, 2);
  Scheduler s(m, {});
  for (const auto& row : plan) s.add_program(run_plan(row));
  const auto run = s.run();
  EXPECT_EQ(run.trace.size(), 12u);
  EXPECT_FALSE(run.trace.validate().has_value());
}

TEST(Workload, RmwPlannedOpExecutes) {
  std::vector<PlannedOp> row;
  PlannedOp op;
  op.is_write = true;
  op.is_rmw = true;
  op.loc = 0;
  op.value = 5;
  row.push_back(op);
  ScMemory m(1, 1);
  Scheduler s(m, {});
  s.add_program(run_plan(row));
  const auto run = s.run();
  ASSERT_EQ(run.trace.size(), 1u);
  EXPECT_EQ(run.trace.op(0).kind, OpKind::ReadModifyWrite);
  EXPECT_EQ(run.trace.op(0).rmw_read, 0);
  EXPECT_EQ(run.trace.op(0).value, 5);
}

}  // namespace
}  // namespace ssm::sim
