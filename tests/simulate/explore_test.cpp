// Bounded model checking of the machines: exhaustive schedule exploration
// cross-validated against the declarative checkers.
#include "simulate/explore.hpp"

#include <gtest/gtest.h>

#include "history/print.hpp"
#include "models/registry.hpp"
#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::sim {
namespace {

/// Store-buffering plan: p writes x then reads y; q writes y then reads x.
Plan sb_plan() {
  Plan plan(2);
  plan[0] = {{true, 0, 1, OpLabel::Ordinary}, {false, 1, 0,
                                               OpLabel::Ordinary}};
  plan[1] = {{true, 1, 1, OpLabel::Ordinary}, {false, 0, 0,
                                               OpLabel::Ordinary}};
  return plan;
}

/// Figure 3 plan: both write the same location then read it twice.
Plan fig3_plan() {
  Plan plan(2);
  plan[0] = {{true, 0, 1, OpLabel::Ordinary},
             {false, 0, 0, OpLabel::Ordinary},
             {false, 0, 0, OpLabel::Ordinary}};
  plan[1] = {{true, 0, 2, OpLabel::Ordinary},
             {false, 0, 0, OpLabel::Ordinary},
             {false, 0, 0, OpLabel::Ordinary}};
  return plan;
}

bool contains_line(const std::set<std::string>& traces,
                   const std::string& full) {
  return traces.count(full) > 0;
}

TEST(Explore, ScMachineForbidsDoubleStaleRead) {
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); },
      sb_plan(), 2);
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.schedules, 0u);
  // The SC machine can never produce r(y)0 AND r(x)0 together.
  EXPECT_FALSE(
      contains_line(result.traces, "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n"));
}

TEST(Explore, TsoMachineReachesFigureOne) {
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) { return make_tso_machine(p, l); },
      sb_plan(), 2);
  EXPECT_FALSE(result.truncated);
  // Completeness spot check: the paper's Figure 1 outcome is reachable.
  EXPECT_TRUE(
      contains_line(result.traces, "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n"));
  // And the TSO machine reaches strictly more traces than the SC machine.
  const auto sc = explore_traces(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); },
      sb_plan(), 2);
  EXPECT_GT(result.traces.size(), sc.traces.size());
  for (const auto& t : sc.traces) {
    EXPECT_TRUE(result.traces.count(t)) << "TSO machine missing SC trace:\n"
                                        << t;
  }
}

TEST(Explore, PramMachineReachesFigureThree) {
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) { return make_pram_machine(p, l); },
      fig3_plan(), 1);
  EXPECT_FALSE(result.truncated);
  EXPECT_TRUE(contains_line(result.traces,
                            "p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1\n"));
}

TEST(Explore, CoherentMachineForbidsFigureThree) {
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) {
        return make_coherent_machine(p, l);
      },
      fig3_plan(), 1);
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(contains_line(
      result.traces, "p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1\n"));
}

struct SoundnessCase {
  const char* machine;
  const char* model;
};

class ExploreSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(ExploreSoundness, EveryReachableTraceAdmitted) {
  const auto& c = GetParam();
  ExploreFactory factory;
  if (std::string(c.machine) == "sc") {
    factory = [](std::size_t p, std::size_t l) {
      return make_sc_machine(p, l);
    };
  } else if (std::string(c.machine) == "tso") {
    factory = [](std::size_t p, std::size_t l) {
      return make_tso_machine(p, l);
    };
  } else if (std::string(c.machine) == "pram") {
    factory = [](std::size_t p, std::size_t l) {
      return make_pram_machine(p, l);
    };
  } else if (std::string(c.machine) == "causal") {
    factory = [](std::size_t p, std::size_t l) {
      return make_causal_machine(p, l);
    };
  } else {
    factory = [](std::size_t p, std::size_t l) {
      return make_coherent_machine(p, l);
    };
  }
  const auto model = models::make_model(c.model);
  for (const Plan& plan : {sb_plan(), fig3_plan()}) {
    const std::size_t locs = 2;
    const auto histories = explore_histories(factory, plan, locs);
    ASSERT_FALSE(histories.empty());
    for (const auto& h : histories) {
      ASSERT_FALSE(h.validate().has_value());
      EXPECT_TRUE(model->check(h).allowed)
          << c.machine << " reached a trace " << c.model << " rejects:\n"
          << history::format_history(h);
    }
  }
}

// COMPLETE soundness over every reachable schedule (not a sample).
INSTANTIATE_TEST_SUITE_P(
    AllMachines, ExploreSoundness,
    ::testing::Values(SoundnessCase{"sc", "SC"},
                      SoundnessCase{"tso", "TSOfwd"},
                      SoundnessCase{"pram", "PRAM"},
                      SoundnessCase{"causal", "Causal"},
                      SoundnessCase{"coherent", "PCg"}),
    [](const ::testing::TestParamInfo<SoundnessCase>& param) {
      return std::string(param.param.machine) + "_in_" + param.param.model;
    });

TEST(Explore, MachineStrengthChainOnSb) {
  // Reachable-trace sets grow down the machine hierarchy on SB.
  auto count = [&](ExploreFactory f) {
    return explore_traces(f, sb_plan(), 2).traces.size();
  };
  const auto sc = count(
      [](std::size_t p, std::size_t l) { return make_sc_machine(p, l); });
  const auto tso = count(
      [](std::size_t p, std::size_t l) { return make_tso_machine(p, l); });
  const auto pram = count(
      [](std::size_t p, std::size_t l) { return make_pram_machine(p, l); });
  EXPECT_LE(sc, tso);
  EXPECT_LE(tso, pram);
}

TEST(Explore, DepthGuardTriggersGracefully) {
  ExploreOptions opt;
  opt.max_depth = 2;
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) { return make_tso_machine(p, l); },
      sb_plan(), 2, opt);
  EXPECT_TRUE(result.truncated);
}

TEST(Explore, ScheduleCapRespected) {
  ExploreOptions opt;
  opt.max_schedules = 3;
  const auto result = explore_traces(
      [](std::size_t p, std::size_t l) { return make_pram_machine(p, l); },
      sb_plan(), 2, opt);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.schedules, 3u);
}

}  // namespace
}  // namespace ssm::sim
