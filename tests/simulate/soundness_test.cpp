// Operational-vs-declarative soundness: every trace a machine can produce
// must be admitted by the declarative model the machine implements
// (machine ⊆ model).  This is the library's core cross-validation — the
// paper's operational definitions (§3.2, §3.5) against its own framework.
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "models/models.hpp"
#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"
#include "simulate/workload.hpp"

namespace ssm::sim {
namespace {

struct Pairing {
  const char* machine;
  const char* model;
  std::uint32_t sync_locs;  // labeled-only location prefix
};

// tso pairs with the forwarding TSO variant: the machine forwards from the
// store buffer (paper §3.2 operational description), which the paper's
// declarative characterization does not admit — see EXPERIMENTS.md.
// rc-pc pairs with RCg: its labeled fabric is per-sender FIFO + coherence
// (Goodman PC), not DASH semi-causality.
const Pairing kPairings[] = {
    {"sc", "SC", 0},       {"tso", "TSOfwd", 0},  {"pram", "PRAM", 0},
    {"causal", "Causal", 0}, {"coherent", "PCg", 0}, {"rc-sc", "RCsc", 2},
    {"rc-pc", "RCg", 2},
};

std::unique_ptr<Machine> make_machine(std::string_view name,
                                      std::size_t procs, std::size_t locs) {
  if (name == "sc") return make_sc_machine(procs, locs);
  if (name == "tso") return make_tso_machine(procs, locs);
  if (name == "pram") return make_pram_machine(procs, locs);
  if (name == "causal") return make_causal_machine(procs, locs);
  if (name == "coherent") return make_coherent_machine(procs, locs);
  if (name == "rc-sc") return make_rc_sc_machine(procs, locs);
  if (name == "rc-pc") return make_rc_pc_machine(procs, locs);
  ADD_FAILURE() << "unknown machine " << name;
  return nullptr;
}

models::ModelPtr make_named_model(std::string_view name) {
  if (name == "SC") return models::make_sc();
  if (name == "TSOfwd") return models::make_tso_fwd();
  if (name == "PRAM") return models::make_pram();
  if (name == "Causal") return models::make_causal();
  if (name == "PCg") return models::make_goodman();
  if (name == "RCsc") return models::make_rc_sc();
  if (name == "RCg") return models::make_rc_goodman();
  ADD_FAILURE() << "unknown model " << name;
  return nullptr;
}

class MachineSoundness : public ::testing::TestWithParam<Pairing> {};

TEST_P(MachineSoundness, TracesAdmittedByModel) {
  const Pairing& pairing = GetParam();
  const auto model = make_named_model(pairing.model);
  ASSERT_TRUE(model);
  WorkloadSpec spec;
  spec.procs = 2;
  spec.locs = 3;
  spec.ops_per_proc = 4;
  spec.sync_locs = pairing.sync_locs;
  Rng rng(20260705);
  for (int round = 0; round < 60; ++round) {
    const Plan plan = make_plan(spec, rng);
    auto machine = make_machine(pairing.machine, spec.procs, spec.locs);
    ASSERT_TRUE(machine);
    SchedulerOptions opt;
    opt.seed = 1000 + static_cast<std::uint64_t>(round);
    opt.internal_weight = 1 + static_cast<std::uint32_t>(round % 3);
    Scheduler sched(*machine, opt);
    for (auto& proc_plan : plan) sched.add_program(run_plan(proc_plan));
    const RunResult run = sched.run();
    ASSERT_FALSE(run.livelock);
    ASSERT_FALSE(run.trace.validate().has_value())
        << history::format_history(run.trace);
    const auto verdict = model->check(run.trace);
    EXPECT_TRUE(verdict.allowed)
        << pairing.machine << " produced a trace " << pairing.model
        << " rejects (" << verdict.note << "):\n"
        << history::format_history(run.trace);
    if (verdict.allowed) {
      EXPECT_FALSE(model->verify_witness(run.trace, verdict).has_value());
    }
  }
}

std::string pairing_name(const ::testing::TestParamInfo<Pairing>& info) {
  std::string n = std::string(info.param.machine) + "_vs_" +
                  info.param.model;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachineSoundness,
                         ::testing::ValuesIn(kPairings), pairing_name);

TEST(MachineStrength, ScMachineTracesAreAlsoWeakModelTraces) {
  // A quick lattice sanity on real traces: anything the SC machine does is
  // admitted by every model in the chain.
  WorkloadSpec spec;
  spec.procs = 2;
  spec.locs = 2;
  spec.ops_per_proc = 3;
  Rng rng(7);
  const Plan plan = make_plan(spec, rng);
  auto machine = make_sc_machine(spec.procs, spec.locs);
  Scheduler sched(*machine, {});
  for (auto& p : plan) sched.add_program(run_plan(p));
  const auto run = sched.run();
  for (auto maker :
       {models::make_sc, models::make_tso, models::make_pc,
        models::make_pram, models::make_causal}) {
    EXPECT_TRUE(maker()->check(run.trace).allowed);
  }
}

}  // namespace
}  // namespace ssm::sim
