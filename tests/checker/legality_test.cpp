#include "checker/legality.hpp"

#include <gtest/gtest.h>

#include "checker/scope.hpp"
#include "history/builder.hpp"
#include "order/orders.hpp"

namespace ssm::checker {
namespace {

using history::HistoryBuilder;

TEST(LegalView, FindsInterleavingForSimpleHandoff) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 1).build();
  const auto view =
      find_legal_view(h, all_ops(h), order::program_order(h));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->size(), 2u);
  EXPECT_EQ((*view)[0], 0u);  // write must precede the read
  EXPECT_EQ((*view)[1], 1u);
}

TEST(LegalView, RejectsImpossibleValue) {
  // Single order forced by po: w(x)1 then r(x)0 by same processor.
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).r("p", "x", 0).build();
  EXPECT_FALSE(
      find_legal_view(h, all_ops(h), order::program_order(h)).has_value());
}

TEST(LegalView, SbHasNoScView) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  EXPECT_FALSE(
      find_legal_view(h, all_ops(h), order::program_order(h)).has_value());
}

TEST(LegalView, SbPerProcessorViewsExist) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  const auto ppo = order::partial_program_order(h);
  for (ProcId p = 0; p < 2; ++p) {
    EXPECT_TRUE(
        find_legal_view(h, own_plus_writes(h, p), ppo).has_value());
  }
}

TEST(LegalView, ReadOfInitialBeforeAnyWrite) {
  auto h = HistoryBuilder(2, 1).r("p", "x", 0).w("q", "x", 1).build();
  const auto view =
      find_legal_view(h, all_ops(h), order::program_order(h));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], 0u);
}

TEST(LegalView, RmwReadPartEnforced) {
  // Both rmws observe 0: illegal in any single view.
  auto h = HistoryBuilder(2, 1)
               .rmw("p", "x", 0, 1)
               .rmw("q", "x", 0, 2)
               .build();
  EXPECT_FALSE(
      find_legal_view(h, all_ops(h), order::program_order(h)).has_value());
}

TEST(LegalView, RmwHandoffWorks) {
  auto h = HistoryBuilder(2, 1)
               .rmw("p", "x", 0, 1)
               .rmw("q", "x", 1, 2)
               .build();
  const auto view =
      find_legal_view(h, all_ops(h), order::program_order(h));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], 0u);
}

TEST(LegalView, ExemptRmwReadChainsAfterAnotherRmw) {
  // Both test-and-sets read 0.  Even with both rmw read-parts exempt, the
  // chain rule re-checks an rmw whose predecessor write is an rmw, so no
  // legal view exists — exemption must not break mutual exclusion.
  auto h = HistoryBuilder(2, 1)
               .rmw("p", "x", 0, 1)
               .rmw("q", "x", 0, 2)
               .build();
  DynBitset exempt(h.size());
  exempt.set(0);
  exempt.set(1);
  EXPECT_FALSE(find_legal_view(h, all_ops(h), order::program_order(h), exempt)
                   .has_value());
  // A correctly chained handoff stays legal under the same exemption.
  auto ok = HistoryBuilder(2, 1)
                .rmw("p", "x", 0, 1)
                .rmw("q", "x", 1, 2)
                .build();
  DynBitset exempt2(ok.size());
  exempt2.set(0);
  exempt2.set(1);
  EXPECT_TRUE(
      find_legal_view(ok, all_ops(ok), order::program_order(ok), exempt2)
          .has_value());
  // An exempt rmw whose predecessor write is PLAIN keeps its exemption.
  auto plain = HistoryBuilder(2, 1)
                   .w("p", "x", 1)
                   .rmw("q", "x", 0, 2)
                   .build();
  DynBitset exempt3(plain.size());
  exempt3.set(1);
  const auto view = find_legal_view(plain, all_ops(plain),
                                    order::program_order(plain), exempt3);
  ASSERT_TRUE(view.has_value());
}

TEST(ForEachLegalView, EnumeratesAll) {
  // Two independent writes to different locations: both orders legal.
  auto h = HistoryBuilder(2, 2).w("p", "x", 1).w("q", "y", 1).build();
  int count = 0;
  for_each_legal_view(h, all_ops(h), order::program_order(h),
                      [&](const View&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 2);
}

TEST(ForEachLegalView, LegalityPrunesEnumeration) {
  // w(x)1 then r(x)1 by another processor: only the write-first order.
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 1).build();
  int count = 0;
  for_each_legal_view(h, all_ops(h), rel::Relation(h.size()),
                      [&](const View&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 1);
}

TEST(VerifyView, AcceptsWitness) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 1).build();
  const auto po = order::program_order(h);
  const auto view = find_legal_view(h, all_ops(h), po);
  ASSERT_TRUE(view);
  EXPECT_FALSE(verify_view(h, all_ops(h), po, *view).has_value());
}

TEST(VerifyView, RejectsIllegalValue) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 0).build();
  const View bad{0, 1};  // read of 0 after the write
  const auto err =
      verify_view(h, all_ops(h), rel::Relation(h.size()), bad);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("observes"), std::string::npos);
}

TEST(VerifyView, RejectsConstraintViolation) {
  auto h = HistoryBuilder(1, 2).w("p", "x", 1).w("p", "y", 1).build();
  const auto po = order::program_order(h);
  const View backwards{1, 0};
  EXPECT_TRUE(verify_view(h, all_ops(h), po, backwards).has_value());
}

TEST(VerifyView, RejectsWrongSizeAndDuplicates) {
  auto h = HistoryBuilder(1, 2).w("p", "x", 1).w("p", "y", 1).build();
  const rel::Relation none(h.size());
  EXPECT_TRUE(verify_view(h, all_ops(h), none, View{0}).has_value());
  EXPECT_TRUE(verify_view(h, all_ops(h), none, View{0, 0}).has_value());
}

TEST(LegalView, MemoizationHandlesWideSearch) {
  // 6 reads of initial values across 3 locations with no constraints:
  // search must terminate quickly and find a view.
  auto b = HistoryBuilder(3, 3);
  b.r("p", "x", 0).r("p", "y", 0).r("q", "y", 0).r("q", "z", 0)
      .r("r", "z", 0).r("r", "x", 0);
  auto h = std::move(b).build();
  EXPECT_TRUE(
      find_legal_view(h, all_ops(h), rel::Relation(h.size())).has_value());
}

}  // namespace
}  // namespace ssm::checker
