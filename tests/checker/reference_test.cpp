// Differential testing of the view-search engine against an independent
// brute-force reference: enumerate ALL permutations of the view universe
// with std::next_permutation, filter by constraints and legality by hand,
// and compare the existence answer with find_legal_view.  Any divergence
// is an engine bug (memoization, pruning, or legality-gate errors).
#include <gtest/gtest.h>

#include <algorithm>

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "order/orders.hpp"

namespace ssm::checker {
namespace {

/// Brute force: does any permutation of `universe` extend `constraints`
/// and satisfy legality?
bool brute_force_exists(const history::SystemHistory& h,
                        const DynBitset& universe,
                        const rel::Relation& constraints) {
  std::vector<OpIndex> members;
  universe.for_each(
      [&](std::size_t i) { members.push_back(static_cast<OpIndex>(i)); });
  std::sort(members.begin(), members.end());
  do {
    // Constraint check.
    std::vector<std::size_t> pos(h.size(), 0);
    for (std::size_t k = 0; k < members.size(); ++k) pos[members[k]] = k;
    bool ok = true;
    for (OpIndex a : members) {
      constraints.successors(a).for_each([&](std::size_t b) {
        if (universe.test(b) && pos[b] < pos[a]) ok = false;
      });
      if (!ok) break;
    }
    if (!ok) continue;
    // Legality check.
    std::vector<Value> last(h.num_locations(), kInitialValue);
    for (OpIndex i : members) {
      const auto& op = h.op(i);
      if (op.is_read() && last[op.loc] != op.read_value()) {
        ok = false;
        break;
      }
      if (op.is_write()) last[op.loc] = op.value;
    }
    if (ok) return true;
  } while (std::next_permutation(members.begin(), members.end()));
  return false;
}

TEST(Reference, EngineMatchesBruteForceOnRandomViews) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(0xFEED);
  int nontrivial = 0;
  for (int i = 0; i < 120; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto po = order::program_order(h);
    const auto ppo = order::partial_program_order(h);
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      const auto universe = own_plus_writes(h, p);
      for (const rel::Relation* constraints : {&po, &ppo}) {
        const bool engine =
            find_legal_view(h, universe, *constraints).has_value();
        const bool brute = brute_force_exists(h, universe, *constraints);
        ASSERT_EQ(engine, brute)
            << "divergence on processor " << p << " of\n"
            << history::format_history(h);
        nontrivial += engine ? 1 : 0;
      }
    }
  }
  EXPECT_GT(nontrivial, 0);
}

TEST(Reference, EngineMatchesBruteForceOnFullUniverse) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(0xBEEF);
  for (int i = 0; i < 60; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto po = order::program_order(h);
    const auto universe = all_ops(h);
    ASSERT_EQ(find_legal_view(h, universe, po).has_value(),
              brute_force_exists(h, universe, po))
        << history::format_history(h);
  }
}

TEST(Reference, EnumerationCountsMatchBruteForce) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  Rng rng(0xD00D);
  for (int i = 0; i < 40; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto po = order::program_order(h);
    const auto universe = all_ops(h);
    // Count legal linearizations both ways.
    int engine_count = 0;
    for_each_legal_view(h, universe, po, [&](const View&) {
      ++engine_count;
      return true;
    });
    std::vector<OpIndex> members;
    universe.for_each(
        [&](std::size_t k) { members.push_back(static_cast<OpIndex>(k)); });
    std::sort(members.begin(), members.end());
    int brute_count = 0;
    do {
      std::vector<std::size_t> pos(h.size(), 0);
      for (std::size_t k = 0; k < members.size(); ++k) pos[members[k]] = k;
      bool ok = true;
      for (OpIndex a : members) {
        po.successors(a).for_each([&](std::size_t b) {
          if (universe.test(b) && pos[b] < pos[a]) ok = false;
        });
      }
      if (!ok) continue;
      std::vector<Value> last(h.num_locations(), kInitialValue);
      for (OpIndex k : members) {
        const auto& op = h.op(k);
        if (op.is_read() && last[op.loc] != op.read_value()) {
          ok = false;
          break;
        }
        if (op.is_write()) last[op.loc] = op.value;
      }
      if (ok) ++brute_count;
    } while (std::next_permutation(members.begin(), members.end()));
    ASSERT_EQ(engine_count, brute_count) << history::format_history(h);
  }
}

}  // namespace
}  // namespace ssm::checker
