// Regression tests for the memo-table soundness bug: the pre-full-key
// implementation stored only a 64-bit hash of the (scheduled mask, last
// values) state, so two DISTINCT states could collide and a live subtree
// would be pruned as if it were a memoized dead end — wrongly rejecting an
// admissible history.  The full-key open-addressed table compares the
// exact packed state, so collisions only cost probes, never correctness.
//
// The hash hook set_degenerate_memo_hash_for_testing collapses every key
// to one hash value, i.e. it forces the worst-case collision pattern.
// Replayed against the old hash-keyed memo, the FindsWitness case below
// rejects (the first dead-end insert poisons every later lookup); the
// full-key table must keep admitting it.
#include "checker/legality.hpp"

#include <gtest/gtest.h>

#include "checker/scope.hpp"
#include "history/builder.hpp"
#include "order/orders.hpp"

namespace ssm::checker {
namespace {

using history::HistoryBuilder;

/// RAII: force all memo keys onto one hash bucket for the test body.
struct DegenerateHash {
  DegenerateHash() { set_degenerate_memo_hash_for_testing(true); }
  ~DegenerateHash() { set_degenerate_memo_hash_for_testing(false); }
};

/// Admissible history whose search hits a dead end before the witness:
///   p: w(x)1   q: w(x)2   r: r(x)1 ; r(x)2
/// The branch scheduling w1,w2 first dies (r(x)1 can no longer see 1) and
/// memoizes state ({w1,w2}, x=2).  The witness branch then passes through
/// the distinct state ({w1,r1}, x=1) — under a collapsed hash the two
/// states collide, and a hash-keyed memo prunes the witness branch.
history::SystemHistory collision_history() {
  return HistoryBuilder(3, 1)
      .w("p", "x", 1)
      .w("q", "x", 2)
      .r("r", "x", 1)
      .r("r", "x", 2)
      .build();
}

TEST(MemoCollision, FindsWitnessDespiteFullCollisions) {
  auto h = collision_history();
  const auto po = order::program_order(h);
  // Sanity: admissible with the healthy hash.
  const auto baseline = find_legal_view(h, all_ops(h), po);
  ASSERT_TRUE(baseline.has_value());

  DegenerateHash degenerate;
  const auto view = find_legal_view(h, all_ops(h), po);
  ASSERT_TRUE(view.has_value())
      << "full-collision hash pruned a live subtree: the memo is keyed by "
         "hash, not by the full packed state";
  EXPECT_FALSE(verify_view(h, all_ops(h), po, *view).has_value());
  EXPECT_EQ(*view, *baseline);  // search order is hash-independent
}

TEST(MemoCollision, UnsatisfiableStaysRejectedAndMemoStillPrunes) {
  // Unsatisfiable wide search: 6 unconstrained writes of distinct values
  // plus a read of a value nobody writes.  The memo is what keeps this
  // sub-factorial; with every state on one hash bucket the table degrades
  // to a linear scan but must still prune correctly.
  auto b = HistoryBuilder(1, 2);
  for (Value v = 1; v <= 6; ++v) b.w("p", "x", v);
  b.r("p", "y", 7);
  auto h = std::move(b).build_unchecked();

  DegenerateHash degenerate;
  EXPECT_FALSE(
      find_legal_view(h, all_ops(h), rel::Relation(h.size())).has_value());
  const auto stats = last_search_stats();
  EXPECT_GT(stats.memo_hits, 0u)
      << "memo never hit: the collision path is not being exercised";
}

TEST(MemoCollision, EnumerationCountUnaffectedByCollisions) {
  auto h = HistoryBuilder(2, 2).w("p", "x", 1).w("q", "y", 1).build();
  int baseline = 0;
  for_each_legal_view(h, all_ops(h), order::program_order(h),
                      [&](const View&) {
                        ++baseline;
                        return true;
                      });
  DegenerateHash degenerate;
  int collided = 0;
  for_each_legal_view(h, all_ops(h), order::program_order(h),
                      [&](const View&) {
                        ++collided;
                        return true;
                      });
  EXPECT_EQ(baseline, collided);
  EXPECT_EQ(baseline, 2);
}

}  // namespace
}  // namespace ssm::checker
