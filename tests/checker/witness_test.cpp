// Witness certificates end to end: emission from positive verdicts, JSON
// round-trips, independent re-verification, and — the point of the
// exercise — rejection of corrupted certificates.  A verifier that accepts
// a witness with a scrambled view order, a dropped δp member, or a wrong
// labeling certifies nothing.
#include "checker/witness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "checker/witness_verifier.hpp"
#include "history/builder.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::checker {
namespace {

// Models whose corruption behavior is pinned one by one below.  The
// suite-wide test covers every registered model.
const char* const kCoreModels[] = {"SC", "TSO", "PC", "Causal", "PRAM"};

/// p: w(x)1 r(x)1   q: w(y)1 r(y)1 — admitted by every model (each
/// processor only reads its own last write), with a non-empty δp for both
/// processors (each sees the other's write).  Op indices: 0,1 on p and
/// 2,3 on q.
history::SystemHistory own_read_history() {
  return history::HistoryBuilder(2, 2)
      .w("p", "x", 1)
      .r("p", "x", 1)
      .w("q", "y", 1)
      .r("q", "y", 1)
      .build();
}

Witness accepted_witness(const history::SystemHistory& h,
                         const std::string& model_name) {
  const auto m = models::make_model(model_name);
  const auto v = m->check(h);
  EXPECT_TRUE(v.allowed) << model_name;
  Witness w = witness_from_verdict(h, model_name, v);
  EXPECT_EQ(verify_witness(h, w), std::nullopt) << model_name;
  return w;
}

TEST(WitnessCert, EmissionRequiresPositiveVerdict) {
  const auto h = own_read_history();
  EXPECT_THROW((void)witness_from_verdict(h, "SC", Verdict::no("x")),
               InvalidInput);
  EXPECT_THROW((void)witness_from_verdict(h, "SC", Verdict::undecided("x")),
               InvalidInput);
}

TEST(WitnessCert, MutatedViewOrderRejected) {
  const auto h = own_read_history();
  for (const char* model : kCoreModels) {
    Witness w = accepted_witness(h, model);
    // Swap p's write and its own-value read: the read now precedes the
    // only write of 1, so the view is no longer legal (and violates po).
    auto& view = w.views[0];
    const auto wi = std::find(view.begin(), view.end(), OpIndex{0});
    const auto ri = std::find(view.begin(), view.end(), OpIndex{1});
    ASSERT_NE(wi, view.end());
    ASSERT_NE(ri, view.end());
    std::iter_swap(wi, ri);
    EXPECT_NE(verify_witness(h, w), std::nullopt) << model;
  }
}

TEST(WitnessCert, DroppedDeltaMemberRejected) {
  const auto h = own_read_history();
  for (const char* model : kCoreModels) {
    Witness w = accepted_witness(h, model);
    // Remove q's write (index 2) from p's δp and from p's view, keeping
    // the two mutually consistent — the certificate must still fail,
    // because δp is the model's parameter, not the prover's choice.
    auto& delta = w.delta[0];
    const auto di = std::find(delta.begin(), delta.end(), OpIndex{2});
    ASSERT_NE(di, delta.end()) << model;
    delta.erase(di);
    auto& view = w.views[0];
    view.erase(std::find(view.begin(), view.end(), OpIndex{2}));
    EXPECT_NE(verify_witness(h, w), std::nullopt) << model;
  }
}

TEST(WitnessCert, WrongLabelingRejected) {
  const auto h = own_read_history();
  for (const char* model : kCoreModels) {
    Witness w = accepted_witness(h, model);
    // The history has no labeled operations; a witness claiming one lies
    // about the labeling it was produced under.
    w.labeled.push_back(OpIndex{0});
    EXPECT_NE(verify_witness(h, w), std::nullopt) << model;
  }
}

TEST(WitnessCert, MutatedCoherenceRejected) {
  // Two po-ordered writes to x: any view respects w(x)1 -> w(x)2, so a
  // reversed coherence chain for x contradicts every view.
  const auto h = history::HistoryBuilder(2, 2)
                     .w("p", "x", 1)
                     .w("p", "x", 2)
                     .r("q", "x", 1)
                     .r("q", "x", 2)
                     .build();
  for (const char* model : {"PC", "PCg"}) {
    Witness w = accepted_witness(h, model);
    ASSERT_TRUE(w.coherence.has_value()) << model;
    auto& chain = (*w.coherence)[h.op(0).loc];
    ASSERT_GE(chain.size(), 2u) << model;
    std::reverse(chain.begin(), chain.end());
    EXPECT_NE(verify_witness(h, w), std::nullopt) << model;
  }
}

TEST(WitnessCert, MutatedGlobalWriteOrderRejected) {
  const auto h = history::HistoryBuilder(2, 2)
                     .w("p", "x", 1)
                     .w("p", "x", 2)
                     .r("q", "x", 1)
                     .r("q", "x", 2)
                     .build();
  Witness w = accepted_witness(h, "TSO");
  ASSERT_TRUE(w.labeled_order.has_value());
  ASSERT_GE(w.labeled_order->size(), 2u);
  std::reverse(w.labeled_order->begin(), w.labeled_order->end());
  EXPECT_NE(verify_witness(h, w), std::nullopt);
}

TEST(WitnessCert, UnknownModelRejected) {
  const auto h = own_read_history();
  Witness w = accepted_witness(h, "SC");
  w.model = "NotAModel";
  const auto err = verify_witness(h, w);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown model"), std::string::npos);
}

TEST(WitnessCert, JsonRoundTripIsIdentity) {
  const auto h = own_read_history();
  for (const auto& name : models::model_names()) {
    const auto m = models::make_model(name);
    const auto v = m->check(h);
    if (!v.allowed) continue;
    const Witness w = witness_from_verdict(h, name, v);
    const std::string json = to_json(w);
    const Witness back = witness_from_json(json);
    EXPECT_EQ(to_json(back), json) << name;
    EXPECT_EQ(back.model, w.model) << name;
    EXPECT_EQ(back.views, w.views) << name;
    EXPECT_EQ(back.delta, w.delta) << name;
    EXPECT_EQ(back.labeled, w.labeled) << name;
    EXPECT_EQ(back.coherence, w.coherence) << name;
    EXPECT_EQ(back.labeled_order, w.labeled_order) << name;
  }
}

TEST(WitnessCert, MalformedJsonRejected) {
  const auto h = own_read_history();
  const Witness w = accepted_witness(h, "SC");
  const std::string json = to_json(w);
  EXPECT_THROW((void)witness_from_json(""), InvalidInput);
  EXPECT_THROW((void)witness_from_json("{"), InvalidInput);
  EXPECT_THROW((void)witness_from_json(json + "x"), InvalidInput);
  EXPECT_THROW((void)witness_from_json("{\"model\": \"SC\"}"), InvalidInput);
}

// Every positive verdict any registered model produces over the built-in
// suite must certify: package, serialize, parse back, and survive the
// independent verifier.  This is the end-to-end property the PR exists
// for — the search and the verifier agreeing through a serialization
// boundary on ~28 tests x 18 models.
TEST(WitnessCert, BuiltinSuitePositivesAllCertify) {
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& name : models::model_names()) {
      const auto m = models::make_model(name);
      const auto v = m->check(t.hist);
      if (!v.allowed) continue;
      const Witness w = witness_from_verdict(t.hist, name, v);
      const auto err = verify_witness(t.hist, w);
      EXPECT_EQ(err, std::nullopt)
          << t.name << " x " << name << ": " << err.value_or("");
      const Witness back = witness_from_json(to_json(w));
      EXPECT_EQ(verify_witness(t.hist, back), std::nullopt)
          << t.name << " x " << name << " (after JSON round-trip)";
    }
  }
}

}  // namespace
}  // namespace ssm::checker
