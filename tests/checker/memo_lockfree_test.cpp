// FailedStateTable's concurrent contract (src/checker/memo.hpp): after
// reserve_states(), one writer may insert while readers on other threads
// probe lock-free.  The release publication of slot ids against the
// acquire probe loads is exactly what TSan checks when this file runs
// under the `concurrency`/`scheduler` labels.
#include "checker/memo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ssm::checker {
namespace {

constexpr std::size_t kKeyWords = 3;

std::vector<std::uint64_t> make_key(std::uint64_t i) {
  // Spread bits so probe starts differ; the table compares full keys, so
  // the exact mix only affects layout, never membership.
  return {i * 0x9e3779b97f4a7c15ULL, i ^ 0xdeadbeefULL, ~i};
}

TEST(MemoLockFree, SingleWriterConcurrentReaders) {
  constexpr std::uint64_t kInserts = 20000;
  FailedStateTable table(kKeyWords);
  table.reserve_states(kInserts);

  std::atomic<std::uint64_t> published{0};
  std::atomic<bool> stop{false};

  // Readers probe keys at and around the published watermark: everything
  // the writer has announced must be found, and keys never inserted must
  // stay absent — no torn key can ever satisfy the full-word compare.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t probes = 0;
      bool final_round = false;
      while (!final_round) {
        // Checking stop BEFORE probing guarantees at least one probe even
        // when a single-core scheduler runs the whole writer first.
        final_round = stop.load(std::memory_order_acquire);
        const std::uint64_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        const std::uint64_t i = probes % n;
        EXPECT_TRUE(table.contains(make_key(i).data()))
            << "published key " << i << " not visible";
        EXPECT_FALSE(table.contains(make_key(kInserts + 1 + i).data()))
            << "phantom membership for a never-inserted key";
        ++probes;
      }
      EXPECT_GT(probes, 0u);
    });
  }

  for (std::uint64_t i = 0; i < kInserts; ++i) {
    table.insert(make_key(i).data());
    published.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(table.size(), kInserts);
  for (std::uint64_t i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(table.contains(make_key(i).data())) << i;
  }
}

TEST(MemoLockFree, ResetRearmsForAnotherConcurrentRound) {
  // reset() shrinks the slot array; a second reserve_states must restore
  // the no-reallocation guarantee before readers return.
  constexpr std::uint64_t kInserts = 4000;
  FailedStateTable table(kKeyWords);
  for (int round = 0; round < 3; ++round) {
    table.reset(kKeyWords);
    table.reserve_states(kInserts);
    std::atomic<std::uint64_t> published{0};
    std::thread reader([&] {
      while (published.load(std::memory_order_acquire) < kInserts) {
        const std::uint64_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        EXPECT_TRUE(table.contains(make_key(n - 1).data()));
      }
    });
    for (std::uint64_t i = 0; i < kInserts; ++i) {
      table.insert(make_key(i).data());
      published.store(i + 1, std::memory_order_release);
    }
    reader.join();
    EXPECT_EQ(table.size(), kInserts);
  }
}

}  // namespace
}  // namespace ssm::checker
