#include "checker/budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "checker/legality.hpp"
#include "checker/verdict.hpp"
#include "history/builder.hpp"
#include "models/models.hpp"

namespace ssm::checker {
namespace {

TEST(Budget, UnlimitedNeverTrips) {
  SearchBudget b(BudgetSpec{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.charge(1));
  }
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, NodeLimitTripsExactly) {
  SearchBudget b(BudgetSpec{3, 0});
  EXPECT_TRUE(b.charge(1));
  EXPECT_TRUE(b.charge(1));
  EXPECT_TRUE(b.charge(1));
  EXPECT_FALSE(b.charge(1));  // 4th node exceeds max_nodes=3
  EXPECT_TRUE(b.exhausted());
  // Exhaustion latches: everything afterwards fails immediately.
  EXPECT_FALSE(b.charge(1));
}

TEST(Budget, SingleNodeBudgetWorks) {
  SearchBudget b(BudgetSpec{1, 0});
  EXPECT_TRUE(b.charge(1));
  EXPECT_FALSE(b.charge(1));
}

TEST(Budget, TimeoutTripsEvenWithSlowCharging) {
  // 1ms deadline; by the time kClockStride charges have accumulated the
  // clock probe must fire.
  SearchBudget b(BudgetSpec{0, 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bool tripped = false;
  for (std::uint64_t i = 0; i < 2 * SearchBudget::kClockStride; ++i) {
    if (!b.charge(1)) {
      tripped = true;
      break;
    }
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, AmbientScopeInstallAndRestore) {
  EXPECT_EQ(current_budget(), nullptr);
  SearchBudget outer(BudgetSpec{10, 0});
  {
    const BudgetScope scope(&outer);
    EXPECT_EQ(current_budget(), &outer);
    SearchBudget inner(BudgetSpec{5, 0});
    {
      const BudgetScope nested(&inner);
      EXPECT_EQ(current_budget(), &inner);
    }
    EXPECT_EQ(current_budget(), &outer);
  }
  EXPECT_EQ(current_budget(), nullptr);
  EXPECT_FALSE(budget_exhausted());
}

TEST(Budget, ChargeBudgetWithoutAmbientAlwaysContinues) {
  EXPECT_EQ(current_budget(), nullptr);
  EXPECT_TRUE(charge_budget(1000));
}

TEST(Budget, SharedAcrossThreadsLatchesOnce) {
  SearchBudget b(BudgetSpec{1000, 0});
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&b] {
      for (int i = 0; i < 1000; ++i) (void)b.charge(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.charge(1));
}

history::SystemHistory sb_history() {
  // Store-buffering: forbidden under SC, so the SC check must actually
  // search (and fail), which is where the budget bites.
  return history::HistoryBuilder(2, 2)
      .w("p", "x", 1)
      .r("p", "y", 0)
      .w("q", "y", 1)
      .r("q", "x", 0)
      .build();
}

TEST(Budget, ExhaustedSearchYieldsInconclusiveNotNo) {
  const auto h = sb_history();
  const auto sc = models::make_sc();
  SearchBudget b(BudgetSpec{1, 0});
  const BudgetScope scope(&b);
  const auto v = sc->check(h);
  EXPECT_TRUE(v.inconclusive) << v.note;
  EXPECT_TRUE(b.exhausted());
  EXPECT_NE(v.note.find("budget"), std::string::npos) << v.note;
}

TEST(Budget, AmpleBudgetLeavesVerdictUntouched) {
  const auto h = sb_history();
  const auto sc = models::make_sc();
  SearchBudget b(BudgetSpec{1000000, 0});
  const BudgetScope scope(&b);
  const auto v = sc->check(h);
  EXPECT_FALSE(v.inconclusive);
  EXPECT_FALSE(v.allowed);
  EXPECT_FALSE(b.exhausted());
  EXPECT_GT(b.nodes_used(), 0u);
}

TEST(Budget, PositiveVerdictNeverDowngraded) {
  // resolve_with_budget must pass a "yes" through even under an exhausted
  // budget: the witness is genuine evidence.
  SearchBudget b(BudgetSpec{1, 0});
  const BudgetScope scope(&b);
  (void)b.charge(1);
  (void)b.charge(1);
  ASSERT_TRUE(b.exhausted());
  const auto v = resolve_with_budget(Verdict::yes());
  EXPECT_TRUE(v.allowed);
  EXPECT_FALSE(v.inconclusive);
  const auto n = resolve_with_budget(Verdict::no("proved"));
  EXPECT_TRUE(n.inconclusive);
}

TEST(BudgetDeadline, ProbeDeadlineIgnoresStride) {
  // probe_deadline reads the clock even when not a single node has been
  // charged (the stride-amortized path in charge() never would).
  SearchBudget b(BudgetSpec{0, 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(b.probe_deadline());
  EXPECT_TRUE(b.exhausted());
}

TEST(BudgetDeadline, ExhaustionLatchCheckProbesDeadline) {
  // budget_exhausted() is the models' "proved vs ran-out" check; it must
  // notice a blown deadline even when no charge ever crossed a stride.
  SearchBudget b(BudgetSpec{0, 1});
  const BudgetScope scope(&b);
  (void)b.charge(1);  // well below kClockStride: no clock probe here
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(budget_exhausted());
  EXPECT_TRUE(b.exhausted());
}

TEST(BudgetDeadline, SlowSmallSearchesTripTimeoutOnEntry) {
  // Regression for the stride-amortization hole: each of these searches
  // expands ~3 nodes — far under kClockStride — so charge() alone never
  // reads the clock, and with 2ms of (hooked) legality work per node the
  // loop would run all 500 iterations (~3s) before anyone noticed the
  // 30ms deadline.  The unconditional probe on search entry must latch
  // exhaustion within a few iterations of the deadline passing.
  const auto h = history::HistoryBuilder(1, 1).w("p", "x", 1).build();
  rel::DynBitset universe(h.size());
  universe.set(0);
  const rel::Relation none(h.size());
  SearchBudget b(BudgetSpec{0, 30});
  const BudgetScope scope(&b);
  set_slow_legality_hook_for_testing(
      +[] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 500 && !b.exhausted(); ++i) {
    (void)find_legal_view(h, universe, none);
  }
  set_slow_legality_hook_for_testing(nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(b.exhausted());
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000));
}

}  // namespace
}  // namespace ssm::checker
