#include "checker/verdict.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "models/models.hpp"

namespace ssm::checker {
namespace {

TEST(Verdict, YesAndNoFactories) {
  EXPECT_TRUE(Verdict::yes().allowed);
  const auto no = Verdict::no("because");
  EXPECT_FALSE(no.allowed);
  EXPECT_EQ(no.note, "because");
}

TEST(Verdict, FormatNotAllowedIncludesNote) {
  auto h = history::HistoryBuilder(1, 1).w("p", "x", 1).build();
  const std::string s = format_verdict(h, Verdict::no("why not"));
  EXPECT_NE(s.find("NOT ALLOWED"), std::string::npos);
  EXPECT_NE(s.find("why not"), std::string::npos);
}

TEST(Verdict, FormatAllowedShowsViews) {
  auto h = history::HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  const auto v = models::make_pram()->check(h);
  ASSERT_TRUE(v.allowed);
  const std::string s = format_verdict(h, v);
  EXPECT_NE(s.find("ALLOWED"), std::string::npos);
  EXPECT_NE(s.find("S_p:"), std::string::npos);
  EXPECT_NE(s.find("S_q:"), std::string::npos);
}

TEST(Verdict, FormatShowsCoherenceAndLabeledOrder) {
  auto h = history::HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .build();
  const auto pc = models::make_pc()->check(h);
  ASSERT_TRUE(pc.allowed);
  EXPECT_NE(format_verdict(h, pc).find("coherence:"), std::string::npos);
  const auto tso = models::make_tso()->check(h);
  ASSERT_TRUE(tso.allowed);
  EXPECT_NE(format_verdict(h, tso).find("labeled order:"),
            std::string::npos);
}

}  // namespace
}  // namespace ssm::checker
