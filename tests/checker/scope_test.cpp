#include "checker/scope.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"

namespace ssm::checker {
namespace {

using history::HistoryBuilder;

history::SystemHistory sample() {
  return HistoryBuilder(2, 2)
      .w("p", "x", 1)
      .r("p", "y", 0)
      .wl("q", "y", 1)
      .r("q", "x", 0)
      .build();
}

TEST(Scope, AllOps) {
  const auto h = sample();
  EXPECT_EQ(all_ops(h).count(), 4u);
}

TEST(Scope, OwnPlusWrites) {
  const auto h = sample();
  const auto p_view = own_plus_writes(h, 0);
  EXPECT_EQ(p_view.count(), 3u);  // p's 2 ops + q's labeled write
  EXPECT_TRUE(p_view.test(0));
  EXPECT_TRUE(p_view.test(1));
  EXPECT_TRUE(p_view.test(2));
  EXPECT_FALSE(p_view.test(3));  // q's read not visible to p
  const auto q_view = own_plus_writes(h, 1);
  EXPECT_EQ(q_view.count(), 3u);  // q's 2 ops + p's write
  EXPECT_FALSE(q_view.test(1));
}

TEST(Scope, WriteOpsAndLabeledOps) {
  const auto h = sample();
  EXPECT_EQ(write_ops(h).count(), 2u);
  const auto labeled = labeled_ops(h);
  EXPECT_EQ(labeled.count(), 1u);
  EXPECT_TRUE(labeled.test(2));
}

TEST(Scope, OpsOnLocation) {
  const auto h = sample();
  EXPECT_EQ(ops_on(h, 0).count(), 2u);  // w_p(x), r_q(x)
  EXPECT_EQ(ops_on(h, 1).count(), 2u);  // r_p(y), w_q(y)
}

TEST(Scope, RmwIsWriteLikeForViews) {
  auto h = HistoryBuilder(2, 1)
               .rmw("p", "x", 0, 1)
               .r("q", "x", 1)
               .build();
  const auto q_view = own_plus_writes(h, 1);
  EXPECT_TRUE(q_view.test(0));  // p's rmw visible in q's view
  EXPECT_EQ(write_ops(h).count(), 1u);
}

TEST(Scope, RemoteRmwReadsExemptsOnlyOtherProcessorsRmws) {
  auto h = HistoryBuilder(2, 1)
               .rmw("p", "x", 0, 1)
               .r("q", "x", 1)
               .rmw("q", "x", 1, 2)
               .build();
  const auto for_p = remote_rmw_reads(h, 0);
  EXPECT_FALSE(for_p.test(0));  // own rmw: read part stays checked
  EXPECT_FALSE(for_p.test(1));  // plain read: never exempt here
  EXPECT_TRUE(for_p.test(2));   // q's rmw: atomicity is q's obligation
  const auto for_q = remote_rmw_reads(h, 1);
  EXPECT_TRUE(for_q.test(0));
  EXPECT_FALSE(for_q.test(2));
}

}  // namespace
}  // namespace ssm::checker
