// End-to-end fuzzing loop: byte-identical reports across runs and
// thread-pool widths, exact case replay from a finding's seed, the
// injected-bug acceptance path, and metrics accounting.
#include "fuzz/fuzzer.hpp"

#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "litmus/parser.hpp"

namespace ssm::fuzz {
namespace {

FuzzOptions small_bug_run() {
  FuzzOptions o;
  o.seed = 20260807;
  o.iters = 30;
  o.inject_bug_into = "Causal";
  o.oracle.max_operational_ops = 5;
  return o;
}

TEST(Fuzzer, ReportIsByteIdenticalAcrossRuns) {
  const auto a = run_fuzz(small_bug_run());
  const auto b = run_fuzz(small_bug_run());
  EXPECT_FALSE(a.findings.empty());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Fuzzer, ReportIsByteIdenticalAcrossJobs) {
  const auto serial = run_fuzz(small_bug_run());
  common::ThreadPool::set_global_jobs(3);
  const auto parallel = run_fuzz(small_bug_run());
  common::ThreadPool::set_global_jobs(0);  // restore default width
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(Fuzzer, CaseSeedReplaysExactCase) {
  // `--seed <case_seed> --iters 1` must regenerate the case: seed 0 of a
  // run IS the master seed, and later cases derive pure-functionally.
  EXPECT_EQ(case_seed(123, 0), 123u);
  EXPECT_NE(case_seed(123, 1), case_seed(123, 2));
  const auto report = run_fuzz(small_bug_run());
  ASSERT_FALSE(report.findings.empty());
  const auto& f = report.findings.front();
  auto replay = small_bug_run();
  replay.seed = f.case_seed;
  replay.iters = 1;
  const auto again = run_fuzz(replay);
  ASSERT_FALSE(again.findings.empty());
  EXPECT_EQ(again.findings.front().kind, f.kind);
  EXPECT_EQ(again.findings.front().dsl, f.dsl);
}

TEST(Fuzzer, InjectedBugShrinksSmallAndEmitsParseableDsl) {
  const auto report = run_fuzz(small_bug_run());
  ASSERT_FALSE(report.findings.empty());
  bool inversion = false;
  for (const auto& f : report.findings) {
    EXPECT_LE(f.test.hist.size(), 8u) << "shrinker left a large case";
    inversion |= f.kind == FindingKind::LatticeInversion;
    const auto back = litmus::parse_test(f.dsl);
    EXPECT_EQ(back.hist.size(), f.test.hist.size());
  }
  EXPECT_TRUE(inversion);
  EXPECT_GT(report.shrink_steps, 0u);
}

TEST(Fuzzer, CleanModelsComeBackClean) {
  FuzzOptions o;
  o.seed = 42;
  o.iters = 25;
  o.oracle.max_operational_ops = 5;
  const auto report = run_fuzz(o);
  EXPECT_TRUE(report.clean()) << report.format();
  EXPECT_TRUE(report.inconclusive.empty());
  EXPECT_EQ(report.cases, 25u);
}

TEST(Fuzzer, BudgetTripsAreReportedWithReproducingSeed) {
  FuzzOptions o;
  o.seed = 7;
  o.iters = 10;
  o.shrink = false;
  o.oracle.check_operational = false;
  o.oracle.budget.max_nodes = 1;
  const auto report = run_fuzz(o);
  EXPECT_TRUE(report.findings.empty());
  ASSERT_FALSE(report.inconclusive.empty());
  for (const auto& c : report.inconclusive) {
    EXPECT_EQ(c.case_seed, case_seed(o.seed, c.case_index));
    EXPECT_FALSE(c.dsl.empty());
  }
  // The format() text carries the reproduction seed for every trip.
  EXPECT_NE(report.format().find("--seed"), std::string::npos);
}

TEST(Fuzzer, UnknownInjectTargetThrows) {
  FuzzOptions o;
  o.iters = 1;
  o.inject_bug_into = "NotAModel";
  EXPECT_THROW((void)run_fuzz(o), InvalidInput);
}

TEST(Fuzzer, MetricsCountCasesAndFindings) {
  auto& registry = common::metrics::Registry::global();
  const auto cases_before = registry.counter("fuzz.cases").value();
  const auto findings_before = registry.counter("fuzz.findings").value();
  const auto report = run_fuzz(small_bug_run());
  EXPECT_EQ(registry.counter("fuzz.cases").value() - cases_before,
            report.cases);
  EXPECT_EQ(registry.counter("fuzz.findings").value() - findings_before,
            report.findings.size());
}

}  // namespace
}  // namespace ssm::fuzz
