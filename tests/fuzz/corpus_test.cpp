// Corpus manager: content-hashed file names (dedup by construction),
// recorded expectations, loud failures on corrupt files, and replay that
// catches verdict drift.
#include "fuzz/corpus.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::fuzz {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const char* leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / leaf;
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Corpus, SaveRecordsExpectationsAndLoadsBack) {
  const auto dir = fresh_dir("corpus-save");
  const auto models = models::all_models();
  const auto path = save_case(dir, litmus::find_test("fig1-sb"), models);
  EXPECT_TRUE(fs::exists(path));
  const auto tests = load_corpus(dir);
  ASSERT_EQ(tests.size(), 1u);
  EXPECT_EQ(tests[0].name, "fig1-sb");
  // Every model got a recorded verdict (nothing was inconclusive).
  EXPECT_EQ(tests[0].expectations.size(), models.size());
  EXPECT_EQ(tests[0].expectation("SC"), std::optional<bool>(false));
  EXPECT_EQ(tests[0].expectation("TSO"), std::optional<bool>(true));
  const auto replay = replay_corpus(dir, models);
  EXPECT_TRUE(replay.ok());
  EXPECT_EQ(replay.tests, 1u);
}

TEST(Corpus, ContentHashedNamesDedupStructurallyEqualCases) {
  const auto dir = fresh_dir("corpus-dedup");
  const auto models = models::all_models();
  auto t = litmus::find_test("fig1-sb");
  const auto p1 = save_case(dir, t, models);
  t.origin = "different origin, same history";  // hash ignores metadata
  const auto p2 = save_case(dir, t, models);
  EXPECT_EQ(p1, p2);
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(Corpus, ReplayCatchesVerdictDrift) {
  const auto dir = fresh_dir("corpus-drift");
  const auto models = models::all_models();
  const auto path = save_case(dir, litmus::find_test("fig1-sb"), models);
  // Forge the record: claim SC admits store buffering.
  auto text = slurp(path);
  const auto pos = text.find("SC=no");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "SC=yes");
  std::ofstream(path) << text;
  const auto replay = replay_corpus(dir, models);
  ASSERT_EQ(replay.failures.size(), 1u);
  EXPECT_NE(replay.failures[0].detail.find("SC"), std::string::npos);
}

TEST(Corpus, MalformedFilesFailLoudlyWithTheFileName) {
  const auto dir = fresh_dir("corpus-bad");
  fs::create_directories(dir);
  std::ofstream(fs::path(dir) / "broken.litmus") << "name: b\np: q(x)1\n";
  try {
    (void)load_corpus(dir);
    FAIL() << "corrupt corpus must not load";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("broken.litmus"),
              std::string::npos);
  }
}

TEST(Corpus, MissingDirectoryThrows) {
  EXPECT_THROW((void)load_corpus(fresh_dir("corpus-absent")),
               InvalidInput);
}

}  // namespace
}  // namespace ssm::fuzz
