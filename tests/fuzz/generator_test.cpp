// Generator invariants: determinism, well-formedness, proper labeling,
// canonical write values.  Every downstream oracle/corpus guarantee
// assumes these hold for every (seed, spec) pair.
#include "fuzz/generator.hpp"

#include <gtest/gtest.h>

#include "litmus/emit.hpp"

namespace ssm::fuzz {
namespace {

GeneratorSpec rich_spec() {
  GeneratorSpec spec;
  spec.max_procs = 4;
  spec.max_ops = 4;
  spec.locs = 3;
  spec.label_percent = 40;
  spec.rmw_percent = 30;
  return spec;
}

TEST(Generator, DeterministicPerSeed) {
  const auto spec = rich_spec();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng a(seed), b(seed);
    EXPECT_EQ(litmus::emit(random_test(spec, a, "t")),
              litmus::emit(random_test(spec, b, "t")));
  }
}

TEST(Generator, SeedsActuallyVary) {
  const auto spec = rich_spec();
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (litmus::emit(random_test(spec, a, "t")) ==
        litmus::emit(random_test(spec, b, "t"))) {
      ++same;
    }
  }
  EXPECT_LT(same, 10);  // small cases can collide, streams must not track
}

TEST(Generator, EveryCaseIsWellFormed) {
  const auto spec = rich_spec();
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const auto t = random_test(spec, rng, "t");
    const auto err = t.hist.validate();
    EXPECT_FALSE(err.has_value()) << (err ? *err : "");
    EXPECT_GE(t.hist.num_processors(), 1u);
    EXPECT_LE(t.hist.num_processors(), spec.max_procs);
    for (ProcId p = 0; p < t.hist.num_processors(); ++p) {
      EXPECT_FALSE(t.hist.processor_ops(p).empty())
          << "empty processor breaks DSL round-trips";
    }
  }
}

TEST(Generator, LabelingIsPerLocation) {
  // A location is sync (all ops labeled) or ordinary (none) — mixed
  // labeling would leave the properly-labeled subspace the labeled
  // models are defined on (models/labeling.hpp).
  auto spec = rich_spec();
  spec.label_percent = 50;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const auto t = random_test(spec, rng, "t");
    std::vector<int> label_kind(spec.locs, -1);  // -1 unseen, else 0/1
    for (const auto& op : t.hist.operations()) {
      const int labeled = op.is_labeled() ? 1 : 0;
      if (label_kind[op.loc] == -1) {
        label_kind[op.loc] = labeled;
      } else {
        EXPECT_EQ(label_kind[op.loc], labeled)
            << "mixed labeling on location " << op.loc;
      }
    }
  }
}

TEST(Generator, CanonicalWriteValues) {
  const auto spec = rich_spec();
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const auto t = random_test(spec, rng, "t");
    std::vector<Value> next(spec.locs, 0);
    for (const auto& op : t.hist.operations()) {
      if (op.is_write()) {
        EXPECT_EQ(op.value, ++next[op.loc]);
      }
    }
  }
}

TEST(Generator, RespectsSizeKnobs) {
  GeneratorSpec spec;
  spec.min_procs = spec.max_procs = 2;
  spec.min_ops = spec.max_ops = 1;
  spec.locs = 1;
  spec.shape_percent = 0;  // free mode only: exact sizes
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto t = random_test(spec, rng, "t");
    EXPECT_EQ(t.hist.num_processors(), 2u);
    EXPECT_EQ(t.hist.size(), 2u);
  }
}

}  // namespace
}  // namespace ssm::fuzz
