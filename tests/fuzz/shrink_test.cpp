// Shrinker properties: the result still satisfies the predicate, is
// 1-minimal for the greedy passes, and stays inside the well-formed,
// properly-labeled history space.
#include "fuzz/shrink.hpp"

#include <gtest/gtest.h>

#include "litmus/emit.hpp"
#include "litmus/parser.hpp"

namespace ssm::fuzz {
namespace {

history::SystemHistory hist(const char* text) {
  return litmus::parse_test(text).hist;
}

/// The injected-bug trigger: some processor issues >= 2 writes.
bool two_writes_one_proc(const history::SystemHistory& h) {
  std::vector<int> writes(h.num_processors(), 0);
  for (const auto& op : h.operations()) {
    if (op.is_write() && ++writes[op.proc] >= 2) return true;
  }
  return false;
}

TEST(Shrink, ReducesInjectedBugTriggerToTwoOps) {
  const auto h = hist(
      "name: big\n"
      "p: w(x)1 r(y)0 w(x)2 r(x)2\n"
      "q: w(y)1 r(x)1 w(y)2\n"
      "r: r(y)2 r(x)2\n");
  ShrinkStats stats;
  const auto shrunk = shrink(h, two_writes_one_proc, &stats);
  EXPECT_TRUE(two_writes_one_proc(shrunk));
  EXPECT_EQ(shrunk.size(), 2u) << "minimal trigger is two writes";
  EXPECT_EQ(shrunk.num_processors(), 1u);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GE(stats.attempts, stats.steps);
}

TEST(Shrink, AlwaysTruePredicateReachesOneOp) {
  const auto h = hist("name: t\np: w(x)1 w(y)1 r(x)1\nq: r(y)1 r(x)0\n");
  const auto shrunk =
      shrink(h, [](const history::SystemHistory&) { return true; });
  EXPECT_EQ(shrunk.size(), 1u);
}

TEST(Shrink, ResultIsAlwaysWellFormed) {
  // Dropping the write a read observes must be rejected internally —
  // every committed candidate passes SystemHistory::validate().
  const auto h = hist("name: t\np: w(x)1\nq: r(x)1 r(x)1\n");
  const auto shrunk = shrink(h, [](const history::SystemHistory& c) {
    // Keep any history that still contains a read of value 1.
    for (const auto& op : c.operations()) {
      if (op.is_read() && op.read_value() == 1) return true;
    }
    return false;
  });
  EXPECT_FALSE(shrunk.validate().has_value());
  EXPECT_EQ(shrunk.size(), 2u) << "the observed write must survive";
}

TEST(Shrink, StripsLabelsPerWholeLocation) {
  const auto h = hist("name: t\np: w*(x)1 r*(x)1\n");
  const auto shrunk = shrink(h, [](const history::SystemHistory& c) {
    return c.size() >= 2;  // keep both ops; labels are free to go
  });
  ASSERT_EQ(shrunk.size(), 2u);
  for (const auto& op : shrunk.operations()) {
    EXPECT_FALSE(op.is_labeled()) << "labels are droppable here";
  }
}

TEST(Shrink, CompactRenamesToCanonicalSymbols) {
  // Shrinking away processors/locations leaves gaps; compact() closes
  // them so the emitted DSL uses the canonical dense names.
  const auto h = hist("name: t\np: r(z)0\nq: w(a)1\nr: w(z)1\n");
  const auto shrunk = shrink(h, [](const history::SystemHistory& c) {
    for (const auto& op : c.operations()) {
      if (op.is_write() && op.value == 1 && op.proc > 0) return true;
    }
    return false;
  });
  litmus::LitmusTest t;
  t.name = "t";
  t.hist = shrunk;
  // Emits with dense canonical names — parseable and re-emittable.
  const auto text = litmus::emit(t);
  EXPECT_EQ(litmus::emit(litmus::parse_test(text)), text);
}

}  // namespace
}  // namespace ssm::fuzz
