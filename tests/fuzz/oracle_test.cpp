// Oracle invariants: clean registry models never produce findings,
// budget trips are inconclusive (not findings), the injected-bug hook is
// caught as a lattice inversion, and broken certificates surface as
// witness mismatches.
#include "fuzz/oracle.hpp"

#include <gtest/gtest.h>

#include "litmus/parser.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::fuzz {
namespace {

litmus::LitmusTest parse(const char* text) {
  return litmus::parse_test(text);
}

TEST(Oracle, CleanModelsProduceNoFindingsOnBuiltinSuite) {
  OracleOptions opts;
  opts.max_operational_ops = 5;  // keep exhaustive exploration cheap here
  const Oracle oracle(models::all_models(), opts);
  for (const auto& t : litmus::builtin_suite()) {
    if (t.hist.size() > 8) continue;  // large bakery runs have own tests
    const auto result = oracle.run_case(t);
    for (const auto& f : result.findings) {
      ADD_FAILURE() << t.name << ": " << to_string(f.kind) << " "
                    << f.detail;
    }
    EXPECT_TRUE(result.inconclusive.empty()) << t.name;
  }
}

TEST(Oracle, InjectedBugIsALatticeInversion) {
  auto models = models::all_models();
  for (auto& m : models) {
    if (m->name() == "Causal") m = make_buggy_model(std::move(m));
  }
  const Oracle oracle(std::move(models));
  const auto t = parse("name: two-writes\np: w(x)1 w(x)2\n");
  const auto result = oracle.run_case(t);
  bool found = false;
  for (const auto& f : result.findings) {
    if (f.kind == FindingKind::LatticeInversion && f.other == "Causal") {
      found = true;
      EXPECT_TRUE(oracle.reproduces(t.hist, f));
    }
  }
  EXPECT_TRUE(found) << "sabotaged Causal must invert an edge";
  // The single-write history does not trigger the planted bug.
  const auto clean = parse("name: one-write\np: w(x)1\n");
  EXPECT_TRUE(oracle.run_case(clean).findings.empty());
}

TEST(Oracle, InjectedBugAlsoBreaksOperationalSoundness) {
  auto models = models::all_models();
  for (auto& m : models) {
    if (m->name() == "Causal") m = make_buggy_model(std::move(m));
  }
  const Oracle oracle(std::move(models));
  const auto t = parse("name: two-writes\np: w(x)1 w(x)2\n");
  bool unsound = false;
  for (const auto& f : oracle.run_case(t).findings) {
    if (f.kind == FindingKind::OperationalUnsound &&
        f.model == "op:causal") {
      unsound = true;
      EXPECT_TRUE(oracle.reproduces(t.hist, f));
    }
  }
  EXPECT_TRUE(unsound)
      << "causal machine reaches the trace the sabotaged model rejects";
}

TEST(Oracle, BudgetTripsAreInconclusiveNotFindings) {
  OracleOptions opts;
  opts.budget.max_nodes = 1;
  opts.check_operational = false;
  const Oracle oracle(models::all_models(), opts);
  const auto t = parse(
      "name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
  const auto result = oracle.run_case(t);
  EXPECT_TRUE(result.findings.empty())
      << "an exhausted search proves nothing";
  EXPECT_FALSE(result.inconclusive.empty());
}

TEST(Oracle, RemoteRmwAtomicityIsNotALatticeInversion) {
  // Regression for a real fuzz finding (seed 5825575583206072987): TSO
  // admits this SB-with-rmw shape via its global write order, and the
  // per-processor-view models must too — a remote rmw's read part is
  // exempt in their views (checker::remote_rmw_reads), so the missing
  // shared write order no longer manufactures TSO ⊆ Causal / PC ⊆ PRAM
  // inversions or witness mismatches.
  const Oracle oracle(models::all_models());
  const auto t = parse(
      "name: sb-rmw\np: w(y)1 rmw(x)0:1\nq: w(x)2 r(y)0\n");
  for (const auto& f : oracle.run_case(t).findings) {
    ADD_FAILURE() << to_string(f.kind) << " [" << f.model << "]: "
                  << f.detail;
  }
}

TEST(Oracle, ReplicatedMachineRmwTraceIsSound) {
  // Regression for a real fuzz finding (seed 5628249533259684064): the
  // PRAM and causal machines reach this trace (the rmw swaps against the
  // issuer's replica, which saw w(x)2 before w(x)1), so the declarative
  // models must admit it.
  const Oracle oracle(models::all_models());
  const auto t = parse(
      "name: rmw-replica\np: w(x)1 r(x)2\nq: w(x)2 rmw(x)1:3\n");
  for (const auto& f : oracle.run_case(t).findings) {
    ADD_FAILURE() << to_string(f.kind) << " [" << f.model << "]: "
                  << f.detail;
  }
}

TEST(Oracle, UnlabeledOnlyEdgesSkipLabeledHistories) {
  // HC rejects this properly-labeled MP outcome while Local admits it;
  // the Local ⊆ HC edge only holds unlabeled, so this is NOT a finding.
  const Oracle oracle(models::all_models());
  const auto t = parse(
      "name: mp-sync\np: w(y)1 w*(x)1\nq: r*(x)1 r(y)0\n");
  for (const auto& f : oracle.run_case(t).findings) {
    ADD_FAILURE() << to_string(f.kind) << ": " << f.detail;
  }
}

/// A model whose positive verdicts carry no usable evidence.
class NoEvidenceModel final : public models::Model {
 public:
  std::string_view name() const noexcept override { return "Bogus"; }
  std::string_view description() const noexcept override {
    return "returns yes with an empty witness";
  }
  checker::Verdict check(const history::SystemHistory&) const override {
    return checker::Verdict::yes();  // no views, no coherence
  }
};

TEST(Oracle, UncertifiablePositiveVerdictIsAWitnessMismatch) {
  std::vector<models::ModelPtr> models;
  models.push_back(std::make_unique<NoEvidenceModel>());
  OracleOptions opts;
  opts.check_operational = false;
  const Oracle oracle(std::move(models), opts);
  const auto t = parse("name: w\np: w(x)1\n");
  const auto result = oracle.run_case(t);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::WitnessMismatch);
  EXPECT_EQ(result.findings[0].model, "Bogus");
  EXPECT_TRUE(oracle.reproduces(t.hist, result.findings[0]));
}

TEST(Oracle, NarrowedModelSetSkipsAbsentEdges) {
  // An oracle over two models keeps only the edges between them.
  std::vector<models::ModelPtr> models;
  models.push_back(models::make_model("SC"));
  models.push_back(models::make_model("TSO"));
  const Oracle oracle(std::move(models));
  const auto t = parse("name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
  EXPECT_TRUE(oracle.run_case(t).findings.empty());
}

}  // namespace
}  // namespace ssm::fuzz
