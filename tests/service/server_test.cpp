// Check-server tests: end-to-end over real sockets (unix and TCP), with
// the deterministic test-seam solver driving the concurrency cases —
// single-flight dedup, bounded-queue rejection, and graceful drain with
// zero dropped in-flight requests.  Runs under the `service` and
// `concurrency` labels (the latter means a TSan build exercises it).
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "service/client.hpp"

namespace json = ssm::common::json;
namespace metrics = ssm::common::metrics;
using namespace ssm;
using namespace std::chrono_literals;
using service::CachedVerdict;
using service::CheckService;
using service::Client;
using service::Server;
using service::ServerOptions;

namespace {

constexpr const char* kSbProgram =
    "name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";

std::string check_frame(const std::vector<std::string>& models,
                        bool no_cache = false,
                        const std::string& id = "t") {
  std::string frame = "{\"op\": \"check\", \"id\": ";
  json::append_quoted(frame, id);
  frame += ", \"program\": ";
  json::append_quoted(frame, kSbProgram);
  if (!models.empty()) {
    frame += ", \"models\": [";
    for (std::size_t i = 0; i < models.size(); ++i) {
      if (i > 0) frame += ", ";
      json::append_quoted(frame, models[i]);
    }
    frame += ']';
  }
  if (no_cache) frame += ", \"no_cache\": true";
  frame += '}';
  return frame;
}

/// Polls `pred` for up to ~5s; the tests gate on observable state (metrics
/// counters, solver entry) rather than sleeps, so this converges in
/// microseconds when healthy and only burns the timeout on a real bug.
bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// Test-seam solver that blocks every call until released, counting
/// entries — the handle that makes dedup/queue/drain timing deterministic.
struct BlockingSolver {
  std::atomic<int> calls{0};
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;

  CheckService::Solver fn() {
    return [this](const litmus::LitmusTest&, const std::string&,
                  const checker::BudgetSpec&) {
      calls.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return CachedVerdict{CachedVerdict::Status::Forbidden, "", ""};
    };
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

ServerOptions tcp_options(unsigned workers, std::size_t queue) {
  ServerOptions opts;
  opts.use_tcp = true;
  opts.tcp_port = 0;  // kernel-assigned
  opts.workers = workers;
  opts.queue_capacity = queue;
  return opts;
}

TEST(ServerEndToEnd, SolvesThenServesFromCacheOverTcp) {
  Server server(tcp_options(2, 64));
  server.start();
  auto client = Client::connect_tcp(server.port());

  const json::Value first =
      json::parse(client.call(check_frame({"SC", "TSO"})));
  ASSERT_TRUE(first.at("ok").as_bool());
  const auto& r1 = first.at("results").items();
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[0].at("model").as_string(), "SC");
  EXPECT_EQ(r1[0].at("verdict").as_string(), "forbidden");
  EXPECT_EQ(r1[0].at("source").as_string(), "solved");
  EXPECT_EQ(r1[1].at("verdict").as_string(), "allowed");
  ASSERT_NE(r1[1].find("witness_fnv1a"), nullptr);

  const json::Value second =
      json::parse(client.call(check_frame({"SC", "TSO"})));
  const auto& r2 = second.at("results").items();
  EXPECT_EQ(r2[0].at("source").as_string(), "cache");
  EXPECT_EQ(r2[1].at("source").as_string(), "cache");
  // Byte-identity of the verdict payload: same witness hash both times.
  EXPECT_EQ(r2[1].at("witness_fnv1a").as_string(),
            r1[1].at("witness_fnv1a").as_string());

  server.begin_drain();
  server.wait();
}

TEST(ServerEndToEnd, WorksOverUnixSocketAndAnswersControlOps) {
  char tmpl[] = "/tmp/ssm-srv-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string socket_path = std::string(tmpl) + "/s";

  ServerOptions opts;
  opts.unix_socket = socket_path;
  opts.workers = 1;
  Server server(opts);
  server.start();
  auto client = Client::connect_unix(socket_path);

  const json::Value pong = json::parse(client.call("{\"op\": \"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  const json::Value stats =
      json::parse(client.call("{\"op\": \"stats\", \"id\": \"s\"}"));
  EXPECT_TRUE(stats.at("ok").as_bool());
  ASSERT_NE(stats.at("stats").find("counters"), nullptr);

  server.begin_drain();
  server.wait();
  EXPECT_FALSE(std::filesystem::exists(socket_path));  // unlinked on drain
  std::filesystem::remove_all(tmpl);
}

TEST(ServerProtocol, MalformedFrameGetsTypedErrorNotDisconnect) {
  Server server(tcp_options(1, 16));
  server.start();
  auto client = Client::connect_tcp(server.port());

  const json::Value err = json::parse(client.call("this is not json"));
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("type").as_string(), "parse_error");

  const json::Value err2 = json::parse(
      client.call("{\"op\": \"check\", \"id\": \"x\", \"program\": \"???\"}"));
  EXPECT_FALSE(err2.at("ok").as_bool());
  EXPECT_EQ(err2.at("error").at("type").as_string(), "bad_request");
  EXPECT_EQ(err2.at("id").as_string(), "x");

  // The connection survives both errors.
  const json::Value pong = json::parse(client.call("{\"op\": \"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());

  server.begin_drain();
  server.wait();
}

TEST(ServerProtocol, OversizedFrameGetsParseErrorAndIsDiscarded) {
  ServerOptions opts = tcp_options(1, 16);
  opts.max_frame_bytes = 512;
  Server server(opts);
  server.start();
  auto client = Client::connect_tcp(server.port());

  // 8 KiB with the only newline at the very end: the server's 4 KiB read
  // chunks overflow the 512-byte frame cap long before the terminator, so
  // the frame is answered with a typed error and skipped — never buffered
  // whole.
  client.send_frame(std::string(8192, 'x'));
  const auto reply = client.read_frame();
  ASSERT_TRUE(reply.has_value());
  const json::Value err = json::parse(*reply);
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("type").as_string(), "parse_error");
  // Exactly one error per oversized frame, and the connection survives:
  // the next frame on the same socket parses normally.
  const json::Value pong = json::parse(client.call("{\"op\": \"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());

  server.begin_drain();
  server.wait();
}

TEST(ServerLifecycle, DisconnectedClientsAreReclaimed) {
  Server server(tcp_options(1, 16));
  server.start();
  auto& open = metrics::Registry::global().gauge("service.open_connections");
  const std::int64_t base = open.value();

  {
    std::vector<Client> clients;
    for (int i = 0; i < 8; ++i) {
      clients.push_back(Client::connect_tcp(server.port()));
      EXPECT_TRUE(json::parse(clients.back().call("{\"op\": \"ping\"}"))
                      .at("ok")
                      .as_bool());
    }
    ASSERT_TRUE(eventually([&] { return open.value() == base + 8; }));
  }  // all eight clients hang up

  // Each disconnect must retire its connection (fd + reader) immediately,
  // not hold it until drain — a long-running server would otherwise run
  // out of fds one one-shot client at a time.
  ASSERT_TRUE(eventually([&] { return open.value() == base; }));

  // The listener is still healthy afterwards.
  auto fresh = Client::connect_tcp(server.port());
  EXPECT_TRUE(json::parse(fresh.call("{\"op\": \"ping\"}")).at("ok").as_bool());

  server.begin_drain();
  server.wait();
  EXPECT_EQ(open.value(), base) << "drain must retire the open connection too";
}

TEST(ServerProtocol, UnknownModelRejectsTheWholeRequest) {
  Server server(tcp_options(1, 16));
  server.start();
  auto client = Client::connect_tcp(server.port());
  const json::Value err =
      json::parse(client.call(check_frame({"SC", "NoSuchModel"})));
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("type").as_string(), "bad_request");
  server.begin_drain();
  server.wait();
}

// REVIEW regression: trace "ops" chunks are byte splits of the NDJSON op
// stream — a line straddling two chunks must be reassembled, not parsed
// as two corrupt lines that kill the session.
TEST(ServerProtocol, TraceChunksMayStraddleLineBoundaries) {
  Server server(tcp_options(1, 16));
  server.start();
  auto client = Client::connect_tcp(server.port());

  const std::string header = "{\"ssm_trace\":1,\"procs\":1,\"locs\":1}";
  const std::string ops =
      "{\"p\":0,\"k\":\"w\",\"x\":0,\"v\":1}\n"
      "{\"p\":0,\"k\":\"r\",\"x\":0,\"v\":1}\n";

  // Streams the same two ops with the chunk boundary at `split` bytes and
  // returns the end-of-stream summary digest.
  const auto run = [&](std::size_t split) {
    std::string begin =
        "{\"op\": \"trace\", \"id\": \"b\", \"phase\": \"begin\", "
        "\"header\": ";
    json::append_quoted(begin, header);
    begin += '}';
    EXPECT_TRUE(json::parse(client.call(begin)).at("ok").as_bool());
    for (const std::string& chunk :
         {ops.substr(0, split), ops.substr(split)}) {
      std::string frame =
          "{\"op\": \"trace\", \"id\": \"c\", \"phase\": \"ops\", "
          "\"lines\": ";
      json::append_quoted(frame, chunk);
      frame += '}';
      const json::Value reply = json::parse(client.call(frame));
      EXPECT_TRUE(reply.at("ok").as_bool());
    }
    const json::Value end = json::parse(
        client.call("{\"op\": \"trace\", \"id\": \"e\", \"phase\": \"end\"}"));
    EXPECT_TRUE(end.at("ok").as_bool());
    return end.at("summary").at("digest").as_string();
  };

  const std::size_t aligned = ops.find('\n') + 1;
  const std::string at_line = run(aligned);
  const std::string mid_line = run(aligned + 10);  // inside the second op
  EXPECT_EQ(at_line, mid_line);

  server.begin_drain();
  server.wait();
}

TEST(ServerConcurrency, IdenticalConcurrentRequestsSolveOnce) {
  BlockingSolver solver;
  Server server(tcp_options(4, 64), solver.fn());
  server.start();

  auto& dedup =
      metrics::Registry::global().counter("service.inflight_dedup");
  const std::uint64_t dedup_base = dedup.value();

  constexpr int kClients = 4;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Client::connect_tcp(server.port());
      replies[static_cast<std::size_t>(i)] =
          client.call(check_frame({"SC"}));
    });
  }
  // The leader is inside the (blocked) solve; the other three must join
  // its flight rather than open their own.
  ASSERT_TRUE(eventually([&] { return solver.calls.load() == 1; }));
  ASSERT_TRUE(
      eventually([&] { return dedup.value() >= dedup_base + kClients - 1; }));
  solver.release();
  for (auto& t : threads) t.join();

  EXPECT_EQ(solver.calls.load(), 1) << "N identical requests -> 1 solve";
  int solved = 0, dedup_srcs = 0;
  for (const std::string& reply : replies) {
    const json::Value doc = json::parse(reply);
    ASSERT_TRUE(doc.at("ok").as_bool()) << reply;
    const auto& r = doc.at("results").items();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].at("verdict").as_string(), "forbidden");
    const std::string source = r[0].at("source").as_string();
    if (source == "solved") ++solved;
    if (source == "dedup") ++dedup_srcs;
  }
  EXPECT_EQ(solved, 1);
  EXPECT_EQ(dedup_srcs, kClients - 1);

  server.begin_drain();
  server.wait();
}

TEST(ServerConcurrency, FullAdmissionQueueRejectsWithOverloaded) {
  BlockingSolver solver;
  Server server(tcp_options(1, 1), solver.fn());
  server.start();
  auto& depth = metrics::Registry::global().gauge("service.queue_depth");

  // A occupies the single worker (inside the blocked solver)...
  auto a = Client::connect_tcp(server.port());
  a.send_frame(check_frame({"SC"}, false, "a"));
  ASSERT_TRUE(eventually([&] { return solver.calls.load() == 1; }));
  // ...B fills the queue's single slot (a different program cell would do
  // the same; dedup does not admit — admission happens before solving)...
  auto b = Client::connect_tcp(server.port());
  b.send_frame(check_frame({"TSO"}, false, "b"));
  ASSERT_TRUE(eventually([&] { return depth.value() == 1; }));
  // ...and C must be rejected immediately with the typed overload error,
  // answered by the reader thread while the worker is still busy.
  auto c = Client::connect_tcp(server.port());
  const json::Value rejection =
      json::parse(c.call(check_frame({"SC"}, false, "c")));
  EXPECT_FALSE(rejection.at("ok").as_bool());
  EXPECT_EQ(rejection.at("error").at("type").as_string(), "overloaded");
  EXPECT_EQ(rejection.at("id").as_string(), "c");

  solver.release();
  const auto ra = a.read_frame();
  const auto rb = b.read_frame();
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(json::parse(*ra).at("ok").as_bool());
  EXPECT_TRUE(json::parse(*rb).at("ok").as_bool());

  server.begin_drain();
  server.wait();
}

TEST(ServerConcurrency, GracefulDrainAnswersEveryAdmittedRequest) {
  BlockingSolver solver;
  Server server(tcp_options(1, 16), solver.fn());
  server.start();

  // A is mid-solve, B is admitted but still queued: both must be answered
  // even though the drain starts before either finishes.
  auto a = Client::connect_tcp(server.port());
  a.send_frame(check_frame({"SC"}, false, "a"));
  ASSERT_TRUE(eventually([&] { return solver.calls.load() == 1; }));
  auto b = Client::connect_tcp(server.port());
  b.send_frame(check_frame({"TSO"}, false, "b"));
  ASSERT_TRUE(eventually([&] {
    return metrics::Registry::global().gauge("service.queue_depth").value() ==
           1;
  }));

  server.begin_drain();
  EXPECT_TRUE(server.draining());
  solver.release();
  server.wait();  // returns only after every response is flushed

  const auto ra = a.read_frame();
  ASSERT_TRUE(ra.has_value()) << "in-flight request dropped by drain";
  EXPECT_TRUE(json::parse(*ra).at("ok").as_bool());
  EXPECT_EQ(json::parse(*ra).at("id").as_string(), "a");
  const auto rb = b.read_frame();
  ASSERT_TRUE(rb.has_value()) << "queued request dropped by drain";
  EXPECT_TRUE(json::parse(*rb).at("ok").as_bool());
  EXPECT_EQ(json::parse(*rb).at("id").as_string(), "b");

  // After the answered frames the server closes cleanly: EOF, not junk.
  EXPECT_FALSE(a.read_frame().has_value());
  EXPECT_FALSE(b.read_frame().has_value());
}

TEST(ServerConcurrency, ShutdownOpDrainsTheServer) {
  Server server(tcp_options(1, 16));
  server.start();
  auto client = Client::connect_tcp(server.port());
  const json::Value ack =
      json::parse(client.call("{\"op\": \"shutdown\", \"id\": \"z\"}"));
  EXPECT_TRUE(ack.at("ok").as_bool());
  EXPECT_TRUE(server.draining());
  server.wait();
  EXPECT_FALSE(client.read_frame().has_value());  // clean EOF after drain
}

TEST(ServerConcurrency, DrainingAndOverloadedAreDistinctTypedErrors) {
  // The two retryable rejections a cluster router keys its policy on
  // (re-route vs retry-same-node) must be distinguishable on the wire
  // from a single node.  One batch frame [shutdown, check] makes the
  // draining case deterministic: the ack flips the server to draining
  // before the check is admitted, so its in-position response is the
  // typed `draining` error.
  {
    Server server(tcp_options(1, 16));
    server.start();
    auto client = Client::connect_tcp(server.port());
    std::string frame = "[{\"op\": \"shutdown\", \"id\": \"s\"}, ";
    frame += check_frame({"SC"}, false, "late");
    frame += "]";
    client.send_frame(frame);
    const json::Value ack = json::parse(*client.read_frame());
    EXPECT_TRUE(ack.at("ok").as_bool());
    const json::Value refused = json::parse(*client.read_frame());
    EXPECT_FALSE(refused.at("ok").as_bool());
    EXPECT_EQ(refused.at("id").as_string(), "late");
    EXPECT_EQ(refused.at("error").at("type").as_string(), "draining");
    client.shutdown_write();
    server.wait();
  }

  // Overload is the other type: queue full, server healthy.  A client
  // that conflates them would drain-loop against a busy node (or hammer
  // a dying one), so assert the tag differs.
  BlockingSolver solver;
  Server server(tcp_options(1, 1), solver.fn());
  server.start();
  auto a = Client::connect_tcp(server.port());
  a.send_frame(check_frame({"SC"}, false, "a"));
  ASSERT_TRUE(eventually([&] { return solver.calls.load() == 1; }));
  auto b = Client::connect_tcp(server.port());
  b.send_frame(check_frame({"TSO"}, false, "b"));
  ASSERT_TRUE(eventually([&] {
    return metrics::Registry::global().gauge("service.queue_depth").value() ==
           1;
  }));
  auto c = Client::connect_tcp(server.port());
  const json::Value shed = json::parse(c.call(check_frame({"SC"}, false, "c")));
  EXPECT_EQ(shed.at("error").at("type").as_string(), "overloaded");
  EXPECT_NE(shed.at("error").at("type").as_string(), "draining");

  solver.release();
  server.begin_drain();
  server.wait();
}

TEST(ClientDeadlines, HostConnectAndBoundedIoAgainstRealServer) {
  // The host-aware connect path (getaddrinfo + non-blocking connect with
  // a deadline) must behave identically to the legacy loopback form for
  // a healthy server.
  Server server(tcp_options(1, 16));
  server.start();
  auto client = Client::connect_tcp("127.0.0.1", server.port(),
                                    {/*connect_ms=*/1000, /*io_ms=*/5000});
  const json::Value pong =
      json::parse(client.call("{\"op\": \"ping\", \"id\": \"h\"}"));
  EXPECT_TRUE(pong.at("pong").as_bool());
  server.begin_drain();
  server.wait();
}

TEST(ClientDeadlines, IoDeadlineTurnsAWedgedServerIntoATypedError) {
  // A listener that never accepts: the connect lands in the backlog and
  // the ping is buffered by the kernel, but no response ever comes.  An
  // unbounded client would hang forever; with io_ms set, read_frame must
  // throw InvalidInput once the deadline expires.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  auto client = Client::connect_tcp("127.0.0.1", port,
                                    {/*connect_ms=*/1000, /*io_ms=*/60});
  client.send_frame("{\"op\": \"ping\"}");
  EXPECT_THROW((void)client.read_frame(), InvalidInput);
  ::close(listen_fd);
}

TEST(CheckServiceUnit, EffectiveBudgetClampsToServerCaps) {
  CheckService::Options opts;
  opts.default_budget = {.max_nodes = 1000, .timeout_ms = 500};
  CheckService svc(opts);
  // Unset axes inherit the cap.
  EXPECT_EQ(svc.effective_budget({}).max_nodes, 1000u);
  EXPECT_EQ(svc.effective_budget({}).timeout_ms, 500u);
  // Requests under the cap are honored; over-asks are reduced.
  EXPECT_EQ(svc.effective_budget({.max_nodes = 10, .timeout_ms = 0}).max_nodes,
            10u);
  EXPECT_EQ(
      svc.effective_budget({.max_nodes = 99999, .timeout_ms = 0}).max_nodes,
      1000u);
  // An uncapped server passes requests through untouched.
  CheckService open(CheckService::Options{});
  EXPECT_EQ(open.effective_budget({.max_nodes = 7, .timeout_ms = 0}).max_nodes,
            7u);
  EXPECT_TRUE(open.effective_budget({}).unlimited());
}

TEST(CheckServiceUnit, NoCacheBypassesLookupButStillPopulates) {
  std::atomic<int> calls{0};
  CheckService svc(
      CheckService::Options{},
      [&](const litmus::LitmusTest&, const std::string&,
          const checker::BudgetSpec&) {
        calls.fetch_add(1);
        return CachedVerdict{CachedVerdict::Status::Forbidden, "", ""};
      });
  service::CheckRequest req;
  req.program = kSbProgram;
  req.models = {"SC"};
  req.no_cache = true;
  (void)svc.handle_check(req);
  (void)svc.handle_check(req);
  EXPECT_EQ(calls.load(), 2) << "no_cache must bypass the lookup";
  req.no_cache = false;
  const auto resp = svc.handle_check(req);
  EXPECT_EQ(calls.load(), 2) << "no_cache must still populate the cache";
  EXPECT_EQ(resp.results[0].source, "cache");
}

TEST(CheckServiceUnit, PreloadWarmsEveryCellOnceAndLogsSkips) {
  char tmpl[] = "/tmp/ssm-preload-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  std::ofstream(dir + "/a.litmus") << kSbProgram;
  std::ofstream(dir + "/broken.litmus") << "this is not a litmus program";
  std::ofstream(dir + "/notes.txt") << "ignored: wrong extension";

  std::atomic<int> calls{0};
  CheckService svc(
      CheckService::Options{},
      [&](const litmus::LitmusTest&, const std::string&,
          const checker::BudgetSpec&) {
        calls.fetch_add(1);
        return CachedVerdict{CachedVerdict::Status::Forbidden, "", ""};
      });
  const auto first = svc.preload(dir);
  EXPECT_EQ(first.files, 1u);                        // a.litmus
  EXPECT_EQ(first.skipped, 1u);                      // broken.litmus
  EXPECT_GT(first.loaded, 0u);                       // one cell per model
  EXPECT_EQ(first.loaded, static_cast<std::size_t>(calls.load()));

  const auto second = svc.preload(dir);
  EXPECT_EQ(second.loaded, 0u) << "second preload must be all cache hits";
  EXPECT_EQ(second.skipped, first.loaded + 1);
  EXPECT_EQ(static_cast<std::size_t>(calls.load()), first.loaded);

  EXPECT_THROW((void)svc.preload(dir + "/missing"), InvalidInput);
  std::filesystem::remove_all(dir);
}

}  // namespace
