// Verdict-cache tests: canonical keying, LRU eviction, write-through
// persistence, and — most important — that a corrupted or tampered disk
// record is rejected on load instead of resurfacing as a wrong verdict.
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "checker/witness.hpp"
#include "common/metrics.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"

namespace fs = std::filesystem;
using namespace ssm;
using service::CachedVerdict;
using service::CacheKey;
using service::VerdictCache;

namespace {

constexpr const char* kSbText =
    "name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";

litmus::LitmusTest sb_test() { return litmus::parse_test(kSbText); }

CacheKey sb_key(const std::string& model) {
  CacheKey key;
  key.program = service::canonical_program(sb_test());
  key.model = model;
  return key;
}

/// Solves one (program, model) cell for real and certifies the witness —
/// the same pipeline the service uses, so records written here are
/// representative.
CachedVerdict solve_cell(const litmus::LitmusTest& t,
                         const std::string& model) {
  const auto m = models::make_model(model);
  const auto v = m->check(t.hist);
  CachedVerdict out;
  if (v.allowed) {
    out.status = CachedVerdict::Status::Allowed;
    out.witness_json = checker::to_json(
        checker::witness_from_verdict(t.hist, m->name(), v));
  } else {
    out.status = CachedVerdict::Status::Forbidden;
  }
  return out;
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ssm-cache-test-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

TEST(CanonicalProgram, StripsNameOriginAndExpectations) {
  const auto a = litmus::parse_test(
      "name: one\norigin: somewhere\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n"
      "expect: SC=no\n");
  const auto b = litmus::parse_test(
      "name: two\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
  EXPECT_EQ(service::canonical_program(a), service::canonical_program(b));
}

TEST(CacheKeying, ModelsSeparateEntriesAndInconclusiveStaysBudgetKeyed) {
  VerdictCache cache({.capacity = 16, .dir = ""});
  CacheKey key = sb_key("SC");
  key.max_nodes = 50;
  cache.put(key, {CachedVerdict::Status::Inconclusive, "", "budget"});
  EXPECT_TRUE(cache.get(key).has_value());

  // A different model never aliases, definite or not.
  CacheKey other = key;
  other.model = "TSO";
  EXPECT_FALSE(cache.get(other).has_value());
  // An INCONCLUSIVE verdict is a statement about ONE budget (and backend):
  // it must never answer for a different budget key.
  other = key;
  other.max_nodes = 100;
  EXPECT_FALSE(cache.get(other).has_value());
  other = key;
  other.timeout_ms = 5;
  EXPECT_FALSE(cache.get(other).has_value());
  other = key;
  other.backend = "encode";
  EXPECT_FALSE(cache.get(other).has_value());
}

TEST(CacheKeying, DefiniteVerdictsUpgradeAcrossBudgetAndBackendKeys) {
  // The PR-7 contract: "forbidden"/"allowed" cannot depend on the budget
  // that produced them (the engine is deterministic) nor on the backend
  // (they provably agree), so a definite verdict solved under one key must
  // retire lookups under every other (budget, backend) combination of the
  // same (program, model).
  VerdictCache cache({.capacity = 64, .dir = ""});
  CacheKey key = sb_key("SC");
  key.max_nodes = 50;
  cache.put(key, {CachedVerdict::Status::Forbidden, "", ""});

  CacheKey other = key;
  other.max_nodes = 100;
  auto hit = cache.get(other);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, CachedVerdict::Status::Forbidden);
  other = key;
  other.max_nodes = 0;  // even unlimited
  other.timeout_ms = 0;
  other.backend = "race";
  EXPECT_TRUE(cache.get(other).has_value());
  // But never across models.
  other = key;
  other.model = "TSO";
  EXPECT_FALSE(cache.get(other).has_value());
}

TEST(CacheLru, EvictsLeastRecentlyUsedWithinShardCapacity) {
  // capacity 16 over 16 shards = 1 entry per shard: two keys landing in
  // one shard must displace each other, and stats must say so.
  VerdictCache cache({.capacity = 16, .dir = ""});
  const CachedVerdict v{CachedVerdict::Status::Forbidden, "", ""};
  // Insert many distinct keys; with 1-per-shard capacity the total can
  // never exceed the shard count.
  for (int i = 0; i < 64; ++i) {
    CacheKey key = sb_key("SC");
    key.max_nodes = static_cast<std::uint64_t>(i + 1);
    cache.put(key, v);
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheLru, HitReturnsStoredValueAndCountsStats) {
  VerdictCache cache({.capacity = 1024, .dir = ""});
  CacheKey key = sb_key("SC");
  const CachedVerdict v{CachedVerdict::Status::Forbidden, "", "hello"};
  cache.put(key, v);
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->note, "hello");
  EXPECT_EQ(cache.stats().hits, 1u);
  // Two entries: the primary key and its budget-independent alias mirror.
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(RecordCodec, RoundTripsAllowedAndForbidden) {
  const auto t = sb_test();
  for (const char* model : {"SC", "TSO"}) {
    CacheKey key = sb_key(model);
    const CachedVerdict v = solve_cell(t, model);
    const std::string record = service::encode_record(key, v);
    const auto decoded = service::decode_record(record);
    ASSERT_TRUE(decoded.has_value()) << model;
    EXPECT_EQ(decoded->first, key);
    EXPECT_EQ(decoded->second, v);
  }
}

TEST(RecordCodec, RejectsTamperedRecords) {
  const auto t = sb_test();
  CacheKey key = sb_key("TSO");  // SB is allowed under TSO => has witness
  const CachedVerdict v = solve_cell(t, "TSO");
  ASSERT_EQ(v.status, CachedVerdict::Status::Allowed);
  const std::string record = service::encode_record(key, v);

  EXPECT_FALSE(service::decode_record("not json").has_value());
  EXPECT_FALSE(service::decode_record("{}").has_value());

  // Flip the verdict: checksum catches it.
  std::string tampered = record;
  const auto pos = tampered.find("\"allowed\"");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 9, "\"forbidden\"");
  EXPECT_FALSE(service::decode_record(tampered).has_value());

  // Truncate: parse or checksum catches it.
  EXPECT_FALSE(
      service::decode_record(record.substr(0, record.size() / 2)).has_value());

  // A forbidden record smuggling a witness is rejected even if someone
  // recomputed the checksum: re-encode with inconsistent fields.
  CachedVerdict smuggled = v;
  smuggled.status = CachedVerdict::Status::Forbidden;  // witness kept
  EXPECT_FALSE(
      service::decode_record(service::encode_record(key, smuggled))
          .has_value());

  // A witness for the wrong model fails independent re-verification.
  CacheKey wrong = key;
  wrong.model = "SC";
  EXPECT_FALSE(
      service::decode_record(service::encode_record(wrong, v)).has_value());
}

TEST(PersistentCache, WriteThroughAndReload) {
  TempDir dir;
  const auto t = sb_test();
  CacheKey sc = sb_key("SC");
  CacheKey tso = sb_key("TSO");
  {
    VerdictCache cache({.capacity = 64, .dir = dir.path});
    cache.put(sc, solve_cell(t, "SC"));
    cache.put(tso, solve_cell(t, "TSO"));
    EXPECT_TRUE(fs::exists(cache.record_path(sc)));
    EXPECT_TRUE(fs::exists(cache.record_path(tso)));
  }
  VerdictCache reloaded({.capacity = 64, .dir = dir.path});
  const auto report = reloaded.load_persistent();
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_EQ(report.skipped, 0u);
  const auto hit = reloaded.get(tso);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, CachedVerdict::Status::Allowed);
  EXPECT_FALSE(hit->witness_json.empty());
}

TEST(PersistentCache, CorruptedEntryIsSkippedOnLoad) {
  TempDir dir;
  const auto t = sb_test();
  CacheKey sc = sb_key("SC");
  CacheKey tso = sb_key("TSO");
  std::string tso_path;
  {
    VerdictCache cache({.capacity = 64, .dir = dir.path});
    cache.put(sc, solve_cell(t, "SC"));
    cache.put(tso, solve_cell(t, "TSO"));
    tso_path = cache.record_path(tso);
  }
  {
    // Corrupt one byte in the middle of the TSO record.
    std::fstream f(tso_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        fs::file_size(tso_path) / 2));
    f.put('#');
  }
  VerdictCache reloaded({.capacity = 64, .dir = dir.path});
  const auto report = reloaded.load_persistent();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_TRUE(reloaded.get(sc).has_value());
  EXPECT_FALSE(reloaded.get(tso).has_value());
}

TEST(PersistentCache, OldVersionRecordIsSkippedAndCounted) {
  // PR-5 changed the canonical program key (full symmetry canonicalization)
  // and bumped kRecordVersion 1 -> 2: a v1 record's program text is keyed
  // under the OLD canonicalization, so resurrecting it could alias a
  // different isomorphism class.  Reload must skip it — and report it as
  // stale_version, not as corruption.
  TempDir dir;
  const auto t = sb_test();
  CacheKey sc = sb_key("SC");
  CacheKey tso = sb_key("TSO");
  std::string tso_path;
  {
    VerdictCache cache({.capacity = 64, .dir = dir.path});
    cache.put(sc, solve_cell(t, "SC"));
    cache.put(tso, solve_cell(t, "TSO"));
    tso_path = cache.record_path(tso);
  }
  {
    // Rewrite the TSO record as version 1.  The version gate must reject
    // it before anything downstream (checksum, witness) is even consulted.
    std::ifstream in(tso_path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    const auto pos = text.find("\"version\": 3");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 12, "\"version\": 1");
    std::ofstream out(tso_path, std::ios::trunc);
    out << text;
  }
  VerdictCache reloaded({.capacity = 64, .dir = dir.path});
  const auto report = reloaded.load_persistent();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.stale_version, 1u);
  EXPECT_TRUE(reloaded.get(sc).has_value());
  EXPECT_FALSE(reloaded.get(tso).has_value());
}

TEST(PersistentCache, BudgetUpgradeSurvivesEvictionAndReload) {
  // Satellite contract: a definite verdict solved under budget B1 keeps
  // answering requests under budget B2 even after the memory layer is
  // gone — the alias mirror is rebuilt from the persistent record.
  auto& upgrades = ssm::common::metrics::Registry::global().counter(
      "service.cache_budget_upgrades");
  TempDir dir;
  const auto t = sb_test();
  CacheKey b1 = sb_key("TSO");
  b1.max_nodes = 1000;
  b1.timeout_ms = 50;
  {
    VerdictCache cache({.capacity = 64, .dir = dir.path});
    cache.put(b1, solve_cell(t, "TSO"));
  }
  // A fresh instance: the memory layer (primary AND alias entries) is
  // empty until load_persistent re-populates it from the one record.
  VerdictCache reloaded({.capacity = 64, .dir = dir.path});
  CacheKey b2 = b1;
  b2.max_nodes = 77;
  b2.backend = "encode";
  EXPECT_FALSE(reloaded.get(b2).has_value());
  ASSERT_EQ(reloaded.load_persistent().loaded, 1u);
  const std::uint64_t upgrades_before = upgrades.value();
  const auto hit = reloaded.get(b2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, CachedVerdict::Status::Allowed);
  EXPECT_FALSE(hit->witness_json.empty());
  EXPECT_EQ(upgrades.value(), upgrades_before + 1);
  // The exact-key lookup still hits directly (no upgrade counted).
  EXPECT_TRUE(reloaded.get(b1).has_value());
  EXPECT_EQ(upgrades.value(), upgrades_before + 1);
}

TEST(PersistentCache, InconclusiveIsNeverPersisted) {
  TempDir dir;
  VerdictCache cache({.capacity = 64, .dir = dir.path});
  CacheKey key = sb_key("SC");
  key.max_nodes = 1;
  cache.put(key, {CachedVerdict::Status::Inconclusive, "", "budget"});
  EXPECT_TRUE(cache.get(key).has_value());  // memory layer serves it
  EXPECT_FALSE(fs::exists(cache.record_path(key)));
}

TEST(CacheLockFreeReads, WarmGetManyTakesZeroShardLocks) {
  // The acceptance criterion for the lock-free read path: once every cell
  // of a batch is cached, get_many must answer without acquiring a single
  // shard mutex — every probe goes through the epoch-guarded published
  // table.  The two counters pin both sides: shard_lock_acquisitions is
  // flat across the warm batch, and cache_lockfree_reads advances once
  // per probe.
  auto& reg = ssm::common::metrics::Registry::global();
  auto& shard_locks = reg.counter("service.shard_lock_acquisitions");
  auto& lockfree = reg.counter("service.cache_lockfree_reads");

  VerdictCache cache({.capacity = 1024, .dir = ""});
  constexpr int kCells = 24;
  std::vector<CacheKey> keys;
  keys.reserve(kCells);
  for (int i = 0; i < kCells; ++i) {
    CacheKey key = sb_key(i % 2 == 0 ? "SC" : "TSO");
    key.max_nodes = static_cast<std::uint64_t>(100 + i);
    keys.push_back(key);
  }
  const CachedVerdict v{CachedVerdict::Status::Forbidden, "", ""};
  std::vector<VerdictCache::BatchCell> puts(kCells);
  for (int i = 0; i < kCells; ++i) {
    puts[i].key = &keys[i];
    puts[i].value = &v;
  }
  cache.put_many(puts);  // cold: write side, takes shard locks — expected

  std::vector<VerdictCache::BatchCell> gets(kCells);
  for (int i = 0; i < kCells; ++i) gets[i].key = &keys[i];
  const std::uint64_t locks_before = shard_locks.value();
  const std::uint64_t lockfree_before = lockfree.value();
  cache.get_many(gets);
  for (int i = 0; i < kCells; ++i) {
    ASSERT_TRUE(gets[i].result.has_value()) << "cell " << i;
    EXPECT_EQ(gets[i].result->status, CachedVerdict::Status::Forbidden);
  }
  EXPECT_EQ(shard_locks.value(), locks_before)
      << "warm all-hit batch must not touch any shard mutex";
  // One lock-free probe per cell: every key hits on its primary probe, so
  // no alias re-probe happens.
  EXPECT_EQ(lockfree.value(), lockfree_before + kCells);

  // Single-key warm get is equally lock-free.
  EXPECT_TRUE(cache.get(keys[0]).has_value());
  EXPECT_EQ(shard_locks.value(), locks_before);
  EXPECT_EQ(lockfree.value(), lockfree_before + kCells + 1);
}

TEST(KeyString, FieldsCannotBleedIntoEachOther) {
  // "ab" + "c" and "a" + "bc" must produce different key strings (the
  // length prefixes keep field boundaries); a flat concatenation would
  // alias them.
  CacheKey a{.program = "ab", .model = "c", .max_nodes = 0, .timeout_ms = 0};
  CacheKey b{.program = "a", .model = "bc", .max_nodes = 0, .timeout_ms = 0};
  EXPECT_NE(service::key_string(a), service::key_string(b));
  EXPECT_NE(service::key_hash(a), service::key_hash(b));
}

}  // namespace
