// Wire-protocol tests: request parsing (valid frames, the typed-error
// taxonomy for invalid ones) and response serialization, including the
// canonical results payload the byte-identity check hashes.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "service/cache.hpp"

namespace json = ssm::common::json;
using namespace ssm;
using service::ProtocolError;
using service::Request;

namespace {

/// Parses `frame` expecting a ProtocolError; returns its type tag.
std::string error_type(std::string_view frame) {
  try {
    (void)service::parse_request(frame);
  } catch (const ProtocolError& e) {
    return e.type();
  }
  return "(no error)";
}

TEST(ParseRequest, CheckFrameFullForm) {
  const Request req = service::parse_request(
      "{\"op\": \"check\", \"id\": \"r1\", \"program\": \"p: w(x)1\\n\","
      " \"models\": [\"SC\", \"TSO\"], \"max_nodes\": 100,"
      " \"timeout_ms\": 50, \"no_cache\": true}");
  EXPECT_EQ(req.op, Request::Op::Check);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.check.program, "p: w(x)1\n");
  ASSERT_EQ(req.check.models.size(), 2u);
  EXPECT_EQ(req.check.models[1], "TSO");
  EXPECT_EQ(req.check.budget.max_nodes, 100u);
  EXPECT_EQ(req.check.budget.timeout_ms, 50u);
  EXPECT_TRUE(req.check.no_cache);
}

TEST(ParseRequest, CheckFrameDefaults) {
  const Request req = service::parse_request(
      "{\"op\": \"check\", \"program\": \"p: w(x)1\\n\"}");
  EXPECT_TRUE(req.id.empty());
  EXPECT_TRUE(req.check.models.empty());  // empty = all models
  EXPECT_TRUE(req.check.budget.unlimited());
  EXPECT_FALSE(req.check.no_cache);
}

TEST(ParseRequest, ControlOps) {
  EXPECT_EQ(service::parse_request("{\"op\": \"ping\"}").op,
            Request::Op::Ping);
  EXPECT_EQ(service::parse_request("{\"op\": \"stats\"}").op,
            Request::Op::Stats);
  EXPECT_EQ(service::parse_request("{\"op\": \"shutdown\"}").op,
            Request::Op::Shutdown);
}

TEST(ParseRequest, ErrorTaxonomy) {
  // Not JSON at all -> parse_error.
  EXPECT_EQ(error_type("not json"), "parse_error");
  EXPECT_EQ(error_type("{\"op\": \"check\""), "parse_error");
  // Valid JSON, invalid request -> bad_request.
  EXPECT_EQ(error_type("[1, 2]"), "bad_request");
  EXPECT_EQ(error_type("{\"id\": \"x\"}"), "bad_request");  // missing op
  EXPECT_EQ(error_type("{\"op\": \"frobnicate\"}"), "bad_request");
  EXPECT_EQ(error_type("{\"op\": \"check\"}"), "bad_request");  // no program
  EXPECT_EQ(error_type("{\"op\": \"check\", \"program\": \"\"}"),
            "bad_request");
  EXPECT_EQ(error_type("{\"op\": \"check\", \"program\": \"x\","
                       " \"models\": []}"),
            "bad_request");
  EXPECT_EQ(error_type("{\"op\": \"check\", \"program\": \"x\","
                       " \"max_nodes\": -1}"),
            "bad_request");
}

TEST(ParseRequest, ErrorsCarryTheRequestId) {
  try {
    (void)service::parse_request("{\"op\": \"nope\", \"id\": \"r9\"}");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.id(), "r9");
    EXPECT_EQ(e.type(), "bad_request");
  }
}

TEST(Serialize, CheckResponseRoundTripsThroughTheParser) {
  service::CheckResponse resp;
  resp.id = "r1";
  resp.results.push_back({"SC", "forbidden", "solved", "", ""});
  resp.results.push_back(
      {"TSO", "allowed", "cache", "{\"model\": \"TSO\"}", ""});
  resp.latency_us = 412;
  resp.cache_hits = 1;
  resp.solved = 1;

  const std::string frame = service::serialize_check_response(resp);
  ASSERT_EQ(frame.back(), '\n');
  const json::Value doc = json::parse(
      std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("id").as_string(), "r1");
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].at("verdict").as_string(), "forbidden");
  EXPECT_EQ(results[1].at("source").as_string(), "cache");
  // Witness bytes are embedded verbatim as an object, with their hash.
  EXPECT_EQ(results[1].at("witness").at("model").as_string(), "TSO");
  EXPECT_EQ(results[1].at("witness_fnv1a").as_string(),
            service::hex16(service::fnv1a64("{\"model\": \"TSO\"}")));
  EXPECT_EQ(doc.at("meta").at("latency_us").as_u64(), 412u);
}

TEST(Serialize, CanonicalResultsPayloadExcludesSource) {
  // The byte-identity acceptance check hashes serialize_results; a cached
  // and a solved answer must produce identical bytes there even though
  // the full response frames differ in `source`/`meta`.
  std::vector<service::ModelResult> solved = {
      {"SC", "forbidden", "solved", "", ""}};
  std::vector<service::ModelResult> cached = {
      {"SC", "forbidden", "cache", "", ""}};
  EXPECT_EQ(service::serialize_results(solved),
            service::serialize_results(cached));
}

TEST(Serialize, ErrorFrame) {
  const std::string frame =
      service::serialize_error("r2", "overloaded", "queue full");
  const json::Value doc = json::parse(
      std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("id").as_string(), "r2");
  EXPECT_EQ(doc.at("error").at("type").as_string(), "overloaded");
  EXPECT_EQ(doc.at("error").at("message").as_string(), "queue full");
}

TEST(Serialize, PongAndStatsCarryNodeIdentityAndProtocolVersion) {
  // The cluster pool handshake keys off these two fields: `proto` gates
  // pool admission, `node` is the identity reported in health/stats.
  const std::string pong = service::serialize_pong("p1", "node-a");
  const json::Value pdoc =
      json::parse(std::string_view(pong).substr(0, pong.size() - 1));
  EXPECT_TRUE(pdoc.at("pong").as_bool());
  EXPECT_EQ(pdoc.at("node").as_string(), "node-a");
  EXPECT_EQ(pdoc.at("proto").as_u64(), service::kProtocolVersion);

  const std::string stats = service::serialize_stats("{}", "node-a");
  const json::Value sdoc =
      json::parse(std::string_view(stats).substr(0, stats.size() - 1));
  EXPECT_EQ(sdoc.at("node").as_string(), "node-a");
  EXPECT_EQ(sdoc.at("proto").as_u64(), service::kProtocolVersion);

  // Without a node id (pre-cluster callers), `proto` is still present —
  // version negotiation must not depend on server configuration.
  const std::string bare = service::serialize_pong("p2");
  const json::Value bdoc =
      json::parse(std::string_view(bare).substr(0, bare.size() - 1));
  EXPECT_EQ(bdoc.find("node"), nullptr);
  EXPECT_EQ(bdoc.at("proto").as_u64(), service::kProtocolVersion);
}

TEST(Serialize, RequestRoundTripsThroughTheParser) {
  // The router re-serializes parsed requests to forward them; every field
  // the parser accepts must survive the round trip.
  Request req;
  req.op = Request::Op::Check;
  req.id = "fwd-1";
  req.check.program = "p: w(x)1\nq: r(x)1\n";
  req.check.models = {"SC", "TSO"};
  req.check.budget.max_nodes = 1000;
  req.check.budget.timeout_ms = 250;
  req.check.no_cache = true;

  const std::string frame = service::serialize_request(req);
  ASSERT_EQ(frame.back(), '\n');
  const Request back = service::parse_request(
      std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_EQ(back.op, Request::Op::Check);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.check.program, req.check.program);
  EXPECT_EQ(back.check.models, req.check.models);
  EXPECT_EQ(back.check.budget.max_nodes, req.check.budget.max_nodes);
  EXPECT_EQ(back.check.budget.timeout_ms, req.check.budget.timeout_ms);
  EXPECT_EQ(back.check.no_cache, req.check.no_cache);

  Request ping;
  ping.op = Request::Op::Ping;
  ping.id = "hs";
  const std::string pframe = service::serialize_request(ping);
  EXPECT_EQ(service::parse_request(
                std::string_view(pframe).substr(0, pframe.size() - 1)).op,
            Request::Op::Ping);
}

TEST(Serialize, FramesAreSingleLines) {
  for (const std::string frame :
       {service::serialize_pong("a"), service::serialize_drain_ack("b"),
        service::serialize_error("c", "internal", "multi\nline\nmessage"),
        service::serialize_stats("d")}) {
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame.back(), '\n');
    EXPECT_EQ(frame.find('\n'), frame.size() - 1)
        << "frame must be one line: " << frame;
  }
}

}  // namespace
