// Event-loop server tests: pipelining, batch frames, partial-frame
// reassembly, shard-grouped cache fan-out, per-request admission, and
// EMFILE shedding — the PR-6 surface.  Runs under the `concurrency`
// label, so a TSan build exercises the io-thread/worker/strand handoffs.
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace json = ssm::common::json;
namespace metrics = ssm::common::metrics;
using namespace ssm;
using namespace std::chrono_literals;
using service::CachedVerdict;
using service::CheckService;
using service::Client;
using service::Server;
using service::ServerOptions;
using service::VerdictCache;

namespace {

constexpr const char* kSbProgram =
    "name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";

std::string check_frame(const std::string& id,
                        const std::string& program = kSbProgram) {
  std::string frame = "{\"op\": \"check\", \"id\": ";
  json::append_quoted(frame, id);
  frame += ", \"program\": ";
  json::append_quoted(frame, program);
  frame += ", \"models\": [\"SC\"]}";
  return frame;
}

/// A one-processor program with `n` writes: every `n` yields a distinct
/// canonical form (op count differs), so these make arbitrarily many
/// distinct cache cells that are still trivial to solve.
std::string chain_program(std::size_t n) {
  std::string p = "name: chain\np:";
  for (std::size_t i = 1; i <= n; ++i) p += " w(x)" + std::to_string(i);
  p += '\n';
  return p;
}

bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// Instant test-seam solver: every cell is Forbidden, counted.  Keeps the
/// protocol tests independent of engine timing.
CheckService::Solver instant_solver(std::atomic<int>* calls = nullptr) {
  return [calls](const litmus::LitmusTest&, const std::string&,
                 const checker::BudgetSpec&) {
    if (calls != nullptr) calls->fetch_add(1);
    return CachedVerdict{CachedVerdict::Status::Forbidden, "", ""};
  };
}

struct BlockingSolver {
  std::atomic<int> calls{0};
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;

  CheckService::Solver fn() {
    return [this](const litmus::LitmusTest&, const std::string&,
                  const checker::BudgetSpec&) {
      calls.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
      return CachedVerdict{CachedVerdict::Status::Forbidden, "", ""};
    };
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

ServerOptions tcp_options(unsigned workers, std::size_t queue) {
  ServerOptions opts;
  opts.use_tcp = true;
  opts.tcp_port = 0;
  opts.workers = workers;
  opts.queue_capacity = queue;
  return opts;
}

/// A raw TCP connection: byte-exact writes (no newline fixups), so tests
/// can split frames at arbitrary boundaries and concatenate many frames
/// into one send() — the things the Client class deliberately hides.
struct RawConn {
  int fd = -1;
  std::string buf;

  static RawConn connect_tcp(std::uint16_t port) {
    RawConn c;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c.fd < 0) throw InvalidInput("raw socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      throw InvalidInput("raw connect failed");
    }
    return c;
  }

  RawConn() = default;
  RawConn(RawConn&& o) noexcept : fd(o.fd), buf(std::move(o.buf)) {
    o.fd = -1;
  }
  RawConn(const RawConn&) = delete;
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_all(std::string_view s) {
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n =
          ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw InvalidInput("raw send failed");
      }
      off += static_cast<std::size_t>(n);
    }
  }

  std::string read_line() {
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw InvalidInput("raw recv failed");
      }
      if (n == 0) throw InvalidInput("raw peer closed");
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

TEST(Pipelining, ManyFramesInOneWriteAnswerInOrder) {
  Server server(tcp_options(2, 64), instant_solver());
  server.start();
  auto conn = RawConn::connect_tcp(server.port());

  constexpr int kRequests = 16;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += check_frame("p" + std::to_string(i));
    burst += '\n';
  }
  conn.send_all(burst);  // one write, 16 back-to-back requests

  for (int i = 0; i < kRequests; ++i) {
    const json::Value doc = json::parse(conn.read_line());
    ASSERT_TRUE(doc.at("ok").as_bool()) << "request " << i;
    // Strictly in request order — the per-connection strand contract.
    EXPECT_EQ(doc.at("id").as_string(), "p" + std::to_string(i));
  }

  server.begin_drain();
  server.wait();
}

TEST(Pipelining, PartialFrameSurvivesReadBoundary) {
  Server server(tcp_options(1, 16), instant_solver());
  server.start();
  auto conn = RawConn::connect_tcp(server.port());

  const std::string frame = check_frame("split") + "\n";
  const std::size_t cut = frame.size() / 2;
  // First half lands alone: the server must buffer the partial frame
  // across the readable-event boundary, not answer or reject it.
  conn.send_all(frame.substr(0, cut));
  std::this_thread::sleep_for(30ms);
  // Second half, plus a whole ping, in the next event.
  conn.send_all(frame.substr(cut) + "{\"op\": \"ping\", \"id\": \"after\"}\n");

  const json::Value first = json::parse(conn.read_line());
  EXPECT_TRUE(first.at("ok").as_bool());
  EXPECT_EQ(first.at("id").as_string(), "split");
  const json::Value second = json::parse(conn.read_line());
  EXPECT_TRUE(second.at("ok").as_bool());
  EXPECT_EQ(second.at("id").as_string(), "after");

  server.begin_drain();
  server.wait();
}

TEST(Pipelining, BatchArrayFrameAnswersPerElementInOrder) {
  Server server(tcp_options(1, 16), instant_solver());
  server.start();
  auto conn = RawConn::connect_tcp(server.port());

  // A bare JSON array is a batch: one response per element, in array
  // order; a malformed element errors in position without poisoning its
  // siblings.
  std::string batch = "[";
  batch += check_frame("b1");
  batch += ", {\"op\": \"nope\", \"id\": \"b2\"}, ";
  batch += "{\"op\": \"ping\", \"id\": \"b3\"}]\n";
  conn.send_all(batch);

  const json::Value r1 = json::parse(conn.read_line());
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_EQ(r1.at("id").as_string(), "b1");
  const json::Value r2 = json::parse(conn.read_line());
  EXPECT_FALSE(r2.at("ok").as_bool());
  EXPECT_EQ(r2.at("id").as_string(), "b2");
  EXPECT_EQ(r2.at("error").at("type").as_string(), "bad_request");
  const json::Value r3 = json::parse(conn.read_line());
  EXPECT_TRUE(r3.at("ok").as_bool());
  EXPECT_EQ(r3.at("id").as_string(), "b3");

  // An empty batch is a whole-frame error (nothing to answer per-element).
  conn.send_all("[]\n");
  const json::Value r4 = json::parse(conn.read_line());
  EXPECT_FALSE(r4.at("ok").as_bool());
  EXPECT_EQ(r4.at("error").at("type").as_string(), "bad_request");

  server.begin_drain();
  server.wait();
}

TEST(Pipelining, BatchFanOutTakesEachShardLockAtMostOncePerBatch) {
  char tmpl[] = "/tmp/ssm-pipe-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string socket_path = std::string(tmpl) + "/s";

  ServerOptions opts;
  opts.unix_socket = socket_path;
  opts.workers = 1;
  opts.queue_capacity = 256;
  Server server(opts, instant_solver());
  server.start();

  constexpr std::size_t kPrograms = 64;
  std::vector<std::string> frames;
  frames.reserve(kPrograms);
  for (std::size_t i = 0; i < kPrograms; ++i) {
    frames.push_back(check_frame("s" + std::to_string(i),
                                 chain_program(i + 1)));
  }

  // Warm pass: one call per program, every cell lands in the cache.
  {
    auto client = Client::connect_unix(socket_path);
    for (const std::string& f : frames) {
      const json::Value doc = json::parse(client.call(f));
      ASSERT_TRUE(doc.at("ok").as_bool());
    }
  }

  auto& shard_locks =
      metrics::Registry::global().counter("service.shard_lock_acquisitions");
  auto& batch_size =
      metrics::Registry::global().histogram("service.batch_size");
  const std::uint64_t locks_base = shard_locks.value();
  const std::uint64_t batches_base = batch_size.count();

  // Warm burst: all 64 requests in one write on a unix socket, so the
  // server coalesces them into very few batches and answers them through
  // the shard-grouped multi-get.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  RawConn conn;
  conn.fd = fd;
  std::string burst;
  for (const std::string& f : frames) {
    burst += f;
    burst += '\n';
  }
  conn.send_all(burst);
  for (std::size_t i = 0; i < kPrograms; ++i) {
    const json::Value doc = json::parse(conn.read_line());
    ASSERT_TRUE(doc.at("ok").as_bool());
    EXPECT_EQ(doc.at("id").as_string(), "s" + std::to_string(i));
    EXPECT_EQ(doc.at("results").items()[0].at("source").as_string(), "cache");
  }

  const std::uint64_t locks = shard_locks.value() - locks_base;
  const std::uint64_t batches = batch_size.count() - batches_base;
  ASSERT_GE(batches, 1u);
  // The contract under test: the read path is lock-free, so a warm
  // all-hit burst — 64 requests, however many batches — takes ZERO shard
  // locks (the counter now measures the write side only; the historical
  // bound was "at most one acquisition per shard per batch").
  EXPECT_EQ(locks, 0u)
      << "a warm all-hit burst must not touch any shard mutex";

  server.begin_drain();
  server.wait();
  std::filesystem::remove_all(tmpl);
}

TEST(Admission, GiantPipelinedBurstIsAdmittedPerRequest) {
  BlockingSolver solver;
  Server server(tcp_options(1, 2), solver.fn());
  server.start();
  auto& rejected = metrics::Registry::global().counter("service.rejected");
  const std::uint64_t rejected_base = rejected.value();

  // A occupies the single worker inside the blocked solve; its request has
  // been picked up, so it no longer holds an admission slot.
  auto a = RawConn::connect_tcp(server.port());
  a.send_all(check_frame("a0", chain_program(1)) + "\n");
  ASSERT_TRUE(eventually([&] { return solver.calls.load() == 1; }));

  // One write, five back-to-back requests against capacity 2: the first
  // two are admitted, the other three must be rejected INDIVIDUALLY (id
  // echoed, in response position) — a big burst cannot bypass bounded
  // admission, and a partial burst is not rejected wholesale either.
  auto b = RawConn::connect_tcp(server.port());
  std::string burst;
  for (int i = 1; i <= 5; ++i) {
    burst += check_frame("c" + std::to_string(i), chain_program(i + 1));
    burst += '\n';
  }
  b.send_all(burst);
  ASSERT_TRUE(
      eventually([&] { return rejected.value() == rejected_base + 3; }));

  solver.release();
  const json::Value ra = json::parse(a.read_line());
  EXPECT_TRUE(ra.at("ok").as_bool());
  for (int i = 1; i <= 5; ++i) {
    const json::Value doc = json::parse(b.read_line());
    EXPECT_EQ(doc.at("id").as_string(), "c" + std::to_string(i));
    if (i <= 2) {
      EXPECT_TRUE(doc.at("ok").as_bool()) << "admitted request " << i;
    } else {
      ASSERT_FALSE(doc.at("ok").as_bool()) << "over-capacity request " << i;
      EXPECT_EQ(doc.at("error").at("type").as_string(), "overloaded");
    }
  }

  server.begin_drain();
  server.wait();
}

TEST(AcceptLoop, EmfileShedsOneIdleConnectionAndRecovers) {
  Server server(tcp_options(1, 16), instant_solver());
  server.start();
  auto& accept_errors =
      metrics::Registry::global().counter("service.accept_errors");
  auto& open = metrics::Registry::global().gauge("service.open_connections");
  const std::int64_t open_base = open.value();

  // Two idle connections (a ping each proves they are registered).
  auto idle1 = RawConn::connect_tcp(server.port());
  idle1.send_all("{\"op\": \"ping\", \"id\": \"i1\"}\n");
  (void)idle1.read_line();
  auto idle2 = RawConn::connect_tcp(server.port());
  idle2.send_all("{\"op\": \"ping\", \"id\": \"i2\"}\n");
  (void)idle2.read_line();
  ASSERT_TRUE(eventually([&] { return open.value() == open_base + 2; }));
  const std::uint64_t errors_base = accept_errors.value();

  // Pre-create the client socket, THEN clamp RLIMIT_NOFILE to the current
  // frontier: connect() consumes no new client fd, but the server-side
  // accept() needs one and gets EMFILE — it must shed an idle connection
  // and retry, not go deaf.
  const int spare = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(spare, 0);
  struct RlimitGuard {
    rlimit saved{};
    bool armed = false;
    ~RlimitGuard() {
      if (armed) ::setrlimit(RLIMIT_NOFILE, &saved);
    }
  } guard;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &guard.saved), 0);
  const int probe = ::dup(0);  // first free fd number
  ASSERT_GE(probe, 0);
  ::close(probe);
  rlimit clamped = guard.saved;
  clamped.rlim_cur = static_cast<rlim_t>(probe);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &clamped), 0);
  guard.armed = true;

  RawConn fresh;
  fresh.fd = spare;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(spare, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);

  // The accept failure is counted, an idle connection is shed to free its
  // fd, and the new connection gets served.
  ASSERT_TRUE(
      eventually([&] { return accept_errors.value() > errors_base; }));
  fresh.send_all("{\"op\": \"ping\", \"id\": \"fresh\"}\n");
  const json::Value pong = json::parse(fresh.read_line());
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_EQ(pong.at("id").as_string(), "fresh");
  // Net connections: the two idles minus the shed victim, plus the fresh
  // one.
  ASSERT_TRUE(eventually([&] { return open.value() == open_base + 2; }))
      << "open=" << open.value() << " base=" << open_base
      << " accept_errors=" << accept_errors.value() - errors_base;

  ::setrlimit(RLIMIT_NOFILE, &guard.saved);
  guard.armed = false;
  server.begin_drain();
  server.wait();
}

}  // namespace
