#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ssm::common {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroAndOneSizedBatches) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "n=0 must not run"; });
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SingleJobRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.parallel_for(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;  // safe: serial by construction
  });
  EXPECT_EQ(ran, 16u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Outer tasks occupy pool lanes and each fans out again; the caller
  // participating in its own batch guarantees progress even when every
  // worker is busy with outer tasks.
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(64, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Every non-throwing index still completed: an exception poisons the
  // batch result, not the other lanes.
  EXPECT_EQ(completed.load(), 99u);
}

TEST(ThreadPool, DefaultJobsHonorsEnvOverride) {
  setenv("SSM_JOBS", "7", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 7u);
  setenv("SSM_JOBS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
  unsetenv("SSM_JOBS");
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, GlobalPoolResizable) {
  ThreadPool::set_global_jobs(3);
  EXPECT_EQ(ThreadPool::global().jobs(), 3u);
  ThreadPool::set_global_jobs(1);
  EXPECT_EQ(ThreadPool::global().jobs(), 1u);
}

}  // namespace
}  // namespace ssm::common
