// Work-stealing scheduler edge cases (docs/PARALLELISM.md): stolen tasks
// nesting parallel_for, exceptions crossing a steal, cancellation racing
// the steal protocol, the set_global_jobs in-flight guard, the jobs=1
// serial reference, and the epoch-reclamation domain behind the lock-free
// read paths.  The whole suite runs under the `scheduler` and
// `concurrency` ctest labels, so the TSan/ASan passes cover every
// interleaving asserted here.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "checker/budget.hpp"
#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "common/epoch.hpp"
#include "common/metrics.hpp"
#include "history/builder.hpp"
#include "models/per_processor.hpp"
#include "models/registry.hpp"

namespace ssm::common {
namespace {

using history::HistoryBuilder;

struct SerialAtExit {
  ~SerialAtExit() { ThreadPool::set_global_jobs(1); }
};

/// Forces every chunk except one onto the pool's single worker thread:
/// the caller blocks inside the first chunk it pops until the other
/// kN - 1 chunks are done, and worker lanes only acquire work by
/// stealing from the submitting lane's deque — so all kN - 1 of them
/// cross the steal protocol.
constexpr std::size_t kForcedSteals = 8;

TEST(Scheduler, WorkersAcquireChunksOnlyByStealing) {
  auto& steals = metrics::Registry::global().counter("scheduler.steals");
  const std::uint64_t steals_before = steals.value();

  ThreadPool pool(2);  // one worker thread
  const auto caller = std::this_thread::get_id();
  std::atomic<std::size_t> done{0};
  std::atomic<bool> caller_seen{false};
  std::size_t stolen = 0;  // worker-only until join, then caller-read
  pool.parallel_for(kForcedSteals, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) {
      ASSERT_FALSE(caller_seen.exchange(true))
          << "caller blocked in its first chunk; it cannot pop a second";
      while (done.load(std::memory_order_acquire) < kForcedSteals - 1) {
        std::this_thread::yield();
      }
    } else {
      ++stolen;
    }
    done.fetch_add(1, std::memory_order_release);
  });
  EXPECT_EQ(done.load(), kForcedSteals);
  // The caller executed at most its one blocked chunk; a fast worker may
  // even have stolen the whole batch before the caller popped anything.
  EXPECT_GE(stolen, kForcedSteals - 1);
  // parallel_for flushed the worker-side tallies on the caller thread.
  EXPECT_GE(steals.value() - steals_before, kForcedSteals - 1);
}

TEST(Scheduler, NestedParallelForInsideStolenTasks) {
  // Outer chunks land on worker threads (stolen); each spawns a nested
  // batch from its worker lane, and one level deeper again.  Every index
  // at every level must run exactly once regardless of which lane
  // executed the parent.
  ThreadPool pool(4);
  std::atomic<std::size_t> leaf{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(8, [&](std::size_t) {
        leaf.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(leaf.load(), 8u * 4u * 8u);
}

TEST(Scheduler, ExceptionFromStolenTaskPropagatesToCaller) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::atomic<std::size_t> done{0};
  std::atomic<bool> threw_on_worker{false};
  try {
    pool.parallel_for(kForcedSteals, [&](std::size_t) {
      if (std::this_thread::get_id() == caller) {
        while (done.load(std::memory_order_acquire) < kForcedSteals - 1) {
          std::this_thread::yield();
        }
        done.fetch_add(1, std::memory_order_release);
        return;
      }
      if (!threw_on_worker.exchange(true)) {
        done.fetch_add(1, std::memory_order_release);
        throw std::runtime_error("stolen boom");
      }
      done.fetch_add(1, std::memory_order_release);
    });
    FAIL() << "exception thrown on a worker lane must reach the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stolen boom");
  }
  EXPECT_TRUE(threw_on_worker.load());
  // The throwing chunk poisons the batch result, not its siblings.
  EXPECT_EQ(done.load(), kForcedSteals);
}

TEST(Scheduler, SetGlobalJobsThrowsWhileBatchInFlight) {
  SerialAtExit guard;
  ThreadPool::set_global_jobs(2);
  std::atomic<bool> checked{false};
  ThreadPool::global().parallel_for(4, [&](std::size_t) {
    if (!checked.exchange(true)) {
      // Replacing the global pool would destroy the deque this very batch
      // is executing from; the guard must refuse.
      EXPECT_THROW(ThreadPool::set_global_jobs(3), std::logic_error);
    }
  });
  EXPECT_TRUE(checked.load());
  // Quiescent again: replacement is allowed.
  ThreadPool::set_global_jobs(1);
  EXPECT_EQ(ThreadPool::global().jobs(), 1u);
}

TEST(Scheduler, BudgetPoisonAndStopTokenRaceStealing) {
  // Cancellation pressure against the steal protocol: many concurrent
  // view searches share one tiny SearchBudget (poisoned almost at once)
  // and one stop token tripped midway.  Whatever interleaving the deques
  // produce, every search must terminate, and the latched budget keeps
  // the total charged work bounded.  The history is unsatisfiable, so
  // the per-search result is nullopt under every schedule — cancellation
  // changes wasted work, never the verdict.
  SerialAtExit guard;
  ThreadPool::set_global_jobs(4);
  auto b = HistoryBuilder(2, 2);
  for (Value v = 1; v <= 8; ++v) b.w("p", "x", v);
  b.r("p", "y", 99);  // never written: unsatisfiable
  const auto h = std::move(b).build_unchecked();
  const rel::Relation unconstrained(h.size());
  const rel::DynBitset no_exempt(h.size());
  const auto universe = checker::all_ops(h);

  for (int round = 0; round < 20; ++round) {
    checker::SearchBudget budget({.max_nodes = 64, .timeout_ms = 0});
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> completed{0};
    ThreadPool::global().parallel_for(16, [&](std::size_t i) {
      if (i == 7) stop.store(true, std::memory_order_relaxed);
      const checker::SearchControl control(&stop, &budget);
      const auto view =
          checker::find_legal_view(h, universe, unconstrained, no_exempt,
                                   control);
      EXPECT_FALSE(view.has_value());
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(completed.load(), 16u);
    EXPECT_TRUE(stop.load());
  }
}

TEST(Scheduler, SerialReferenceIsByteIdenticalAndMatchesParallel) {
  // jobs=1 is the reference execution: repeating it must reproduce the
  // exact node count, and with prompt cancellation disabled the parallel
  // schedule must land on the same count — the determinism contract
  // bench/checker_scaling --enforce pins on the CI container.
  SerialAtExit guard;
  models::set_prompt_cancellation(false);
  const auto model = models::make_model("Causal");
  const auto h = HistoryBuilder(3, 2)
                     .w("p", "x", 1)
                     .r("q", "x", 1)
                     .r("q", "y", 0)
                     .w("r", "y", 1)
                     .r("r", "x", 0)
                     .build();

  std::uint64_t reference_nodes = 0;
  bool reference_allowed = false;
  for (int rep = 0; rep < 2; ++rep) {
    ThreadPool::set_global_jobs(1);
    checker::reset_aggregate_search_stats();
    const auto v = model->check(h);
    const auto stats = checker::aggregate_search_stats();
    if (rep == 0) {
      reference_nodes = stats.nodes;
      reference_allowed = v.allowed;
      ASSERT_GT(reference_nodes, 0u);
    } else {
      EXPECT_EQ(stats.nodes, reference_nodes);
      EXPECT_EQ(v.allowed, reference_allowed);
    }
  }
  ThreadPool::set_global_jobs(4);
  checker::reset_aggregate_search_stats();
  const auto v = model->check(h);
  EXPECT_EQ(checker::aggregate_search_stats().nodes, reference_nodes);
  EXPECT_EQ(v.allowed, reference_allowed);
  models::set_prompt_cancellation(true);
}

TEST(Epoch, RetiredObjectsOutliveEveryPinnedReader) {
  auto& domain = epoch::Domain::global();
  static std::atomic<int> freed{0};
  freed.store(0);
  const auto deleter = [](void* p) {
    ++freed;
    delete static_cast<int*>(p);
  };

  {
    epoch::Guard pin;  // a reader that could still hold the pointer
    domain.retire(new int(42), deleter);
    // The pin blocks the second epoch advance the free needs, no matter
    // how often the collector runs.
    for (int i = 0; i < 8; ++i) domain.collect();
    EXPECT_EQ(freed.load(), 0);
  }
  // Unpinned: two advances free it.
  for (int i = 0; i < 8 && freed.load() == 0; ++i) domain.collect();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Epoch, ConcurrentReadersNeverObserveAFreedObject) {
  // Writer repeatedly swaps a published pointer and retires the old
  // value; readers pin, load, dereference, unpin.  Under TSan/ASan this
  // validates the grace-period ordering end to end: a use-after-free or
  // race here is the sanitizer's to report.
  auto& domain = epoch::Domain::global();
  constexpr int kSwaps = 2000;
  std::atomic<int*> published{new int(0)};
  std::atomic<bool> stop{false};
  static const auto deleter = [](void* p) { delete static_cast<int*>(p); };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t sum = 0;
      while (!stop.load(std::memory_order_acquire)) {
        epoch::Guard pin;
        int* p = published.load(std::memory_order_acquire);
        sum += static_cast<std::uint64_t>(*p);
      }
      EXPECT_GE(sum, 0u);
    });
  }
  for (int i = 1; i <= kSwaps; ++i) {
    int* fresh = new int(i);
    int* old = published.exchange(fresh, std::memory_order_acq_rel);
    domain.retire(old, deleter);
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  domain.retire(published.exchange(nullptr), deleter);
  for (int i = 0; i < 8; ++i) domain.collect();
}

}  // namespace
}  // namespace ssm::common
