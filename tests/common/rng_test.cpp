#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ssm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 500 draws
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(1, 2)) ++heads;
  }
  EXPECT_GT(heads, trials / 2 - 300);
  EXPECT_LT(heads, trials / 2 + 300);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(23);
  Rng s1 = base.split();
  Rng s2 = base.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.next() == s2.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ssm
