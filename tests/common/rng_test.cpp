#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ssm {
namespace {

// Golden-sequence pin: the fuzzing subsystem (src/fuzz) derives every
// generated case from this generator, so the exact output stream — not
// just self-consistency — is part of the public contract.  xoshiro256**
// seeded by splitmix64 uses no standard-library distributions, so these
// values must match on every platform, compiler, and word order; a
// failure here means fuzz seeds stopped reproducing across machines.
TEST(Rng, GoldenSequenceSeed1) {
  Rng rng(1);
  const std::uint64_t expected[] = {
      12966619160104079557ULL, 9600361134598540522ULL,
      10590380919521690900ULL, 7218738570589545383ULL,
      12860671823995680371ULL, 2648436617965840162ULL,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.next(), want);
}

TEST(Rng, GoldenBoundedSequence) {
  // Pins Lemire bounded reduction on top of the raw stream.
  Rng rng(42);
  const std::uint64_t expected[] = {0, 3, 6, 9, 9, 7, 7, 8};
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.below(10), want);
}

TEST(Rng, GoldenSequenceLargeSeed) {
  Rng rng(20260807);
  const std::uint64_t expected[] = {
      7540916479382320385ULL, 4055620661759752104ULL,
      4415447232790083483ULL, 6817664421455371968ULL,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.next(), want);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 500 draws
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(1, 2)) ++heads;
  }
  EXPECT_GT(heads, trials / 2 - 300);
  EXPECT_LT(heads, trials / 2 + 300);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(23);
  Rng s1 = base.split();
  Rng s2 = base.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.next() == s2.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ssm
