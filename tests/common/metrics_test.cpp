#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/types.hpp"

namespace ssm::common::metrics {
namespace {

TEST(Metrics, CounterAddsAndResets) {
  auto& c = Registry::global().counter("test.counter_basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  auto& g = Registry::global().gauge("test.gauge_basic");
  g.reset();
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  auto& h = Registry::global().histogram("test.hist_buckets");
  h.reset();
  h.observe(0);  // bucket 0
  h.observe(1);  // bucket 1
  h.observe(2);  // bucket 2
  h.observe(3);  // bucket 2
  h.observe(1023);  // bucket 10
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1023);
  EXPECT_EQ(h.max(), 1023u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Metrics, HistogramSumOverflowIsCountedNotSilent) {
  auto& h = Registry::global().histogram("test.hist_overflow");
  h.reset();
  const std::uint64_t big = ~0ull;  // 2^64 - 1
  h.observe(big);
  EXPECT_EQ(h.overflow(), 0u);
  h.observe(big);  // running total wraps past 2^64-1 here
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.sum(), big - 1);  // 2*(2^64-1) mod 2^64
  EXPECT_EQ(h.max(), big);
  // Top-bucket samples land in the last bucket, never out of range.
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2u);
  // The wrap is surfaced in the JSON snapshot...
  const std::string json = Registry::global().to_json();
  const auto at = json.find("\"test.hist_overflow\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1", at), std::string::npos);
  // ...and absent (not zero) for histograms that never wrapped, so
  // existing snapshot shapes stay byte-identical.
  h.reset();
  h.observe(6);
  const std::string clean = Registry::global().to_json();
  const auto at2 = clean.find("\"test.hist_overflow\"");
  ASSERT_NE(at2, std::string::npos);
  const auto end2 = clean.find('}', at2);
  // Search for the quoted key: the instrument *name* itself contains
  // the substring "overflow".
  EXPECT_EQ(clean.substr(at2, end2 - at2).find("\"overflow\""),
            std::string::npos);
}

TEST(Metrics, LookupReturnsStableAddress) {
  auto& a = Registry::global().counter("test.stable");
  auto& b = Registry::global().counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, KindMismatchThrows) {
  (void)Registry::global().counter("test.kind_clash");
  EXPECT_THROW((void)Registry::global().gauge("test.kind_clash"),
               InvalidInput);
  EXPECT_THROW((void)Registry::global().histogram("test.kind_clash"),
               InvalidInput);
}

TEST(Metrics, JsonSnapshotContainsInstruments) {
  auto& c = Registry::global().counter("test.json_counter");
  c.reset();
  c.add(5);
  auto& h = Registry::global().histogram("test.json_hist");
  h.reset();
  h.observe(6);
  const std::string json = Registry::global().to_json();
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesMergeLosslessly) {
  auto& c = Registry::global().counter("test.concurrent_counter");
  auto& h = Registry::global().histogram("test.concurrent_hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace ssm::common::metrics
