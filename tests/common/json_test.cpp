// Tests for the shared JSON layer (common/json.hpp): escaping, parsing,
// strict accessors, and error behavior.  The service wire protocol and the
// persistent verdict cache both stand on this parser, so defects here
// would surface as protocol or cache corruption.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace json = ssm::common::json;
using ssm::InvalidInput;

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  json::escape(out, s);
  return out;
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escaped("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(escaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escaped(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonEscape, RoundTripsThroughParse) {
  const std::string nasty = "line1\nline2\t\"quoted\" \\slash\\ \x02 end";
  std::string doc = "{\"k\": ";
  json::append_quoted(doc, nasty);
  doc += '}';
  const json::Value v = json::parse(doc);
  EXPECT_EQ(v.at("k").as_string(), nasty);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("42").as_u64(), 42u);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(json::parse("-2.5").as_double(), -2.5);
}

TEST(JsonParse, U64IsStrict) {
  EXPECT_EQ(json::parse("18446744073709551615").as_u64(),
            18446744073709551615ull);
  EXPECT_THROW((void)json::parse("-1").as_u64(), InvalidInput);
  EXPECT_THROW((void)json::parse("1.5").as_u64(), InvalidInput);
  EXPECT_THROW((void)json::parse("\"7\"").as_u64(), InvalidInput);
}

TEST(JsonParse, ObjectsKeepInsertionOrderAndSupportLookup) {
  const json::Value v = json::parse("{\"b\": 1, \"a\": [2, 3], \"c\": {}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.at("a").items().size(), 2u);
  EXPECT_EQ(v.at("a").items()[1].as_u64(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), InvalidInput);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
  EXPECT_THROW((void)json::parse("\"\\ud800\""), InvalidInput);  // surrogate
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), InvalidInput);
  EXPECT_THROW((void)json::parse("{"), InvalidInput);
  EXPECT_THROW((void)json::parse("{\"a\": }"), InvalidInput);
  EXPECT_THROW((void)json::parse("[1, 2,]"), InvalidInput);
  EXPECT_THROW((void)json::parse("nul"), InvalidInput);
  EXPECT_THROW((void)json::parse("\"unterminated"), InvalidInput);
  EXPECT_THROW((void)json::parse("\"raw\nnewline\""), InvalidInput);
  EXPECT_THROW((void)json::parse("{} trailing"), InvalidInput);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)json::parse(deep), InvalidInput);
}

TEST(JsonParse, AccessorsRejectKindMismatch) {
  const json::Value v = json::parse("{\"n\": 1}");
  EXPECT_THROW((void)v.as_string(), InvalidInput);
  EXPECT_THROW((void)v.items(), InvalidInput);
  EXPECT_THROW((void)v.at("n").as_bool(), InvalidInput);
  EXPECT_THROW((void)json::parse("[1]").members(), InvalidInput);
}

}  // namespace
