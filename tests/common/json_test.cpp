// Tests for the shared JSON layer (common/json.hpp): escaping, parsing,
// strict accessors, and error behavior.  The service wire protocol and the
// persistent verdict cache both stand on this parser, so defects here
// would surface as protocol or cache corruption.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace json = ssm::common::json;
using ssm::InvalidInput;

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  json::escape(out, s);
  return out;
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escaped("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(escaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escaped(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonEscape, RoundTripsThroughParse) {
  const std::string nasty = "line1\nline2\t\"quoted\" \\slash\\ \x02 end";
  std::string doc = "{\"k\": ";
  json::append_quoted(doc, nasty);
  doc += '}';
  const json::Value v = json::parse(doc);
  EXPECT_EQ(v.at("k").as_string(), nasty);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("42").as_u64(), 42u);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(json::parse("-2.5").as_double(), -2.5);
}

TEST(JsonParse, U64IsStrict) {
  EXPECT_EQ(json::parse("18446744073709551615").as_u64(),
            18446744073709551615ull);
  EXPECT_THROW((void)json::parse("-1").as_u64(), InvalidInput);
  EXPECT_THROW((void)json::parse("1.5").as_u64(), InvalidInput);
  EXPECT_THROW((void)json::parse("\"7\"").as_u64(), InvalidInput);
}

TEST(JsonParse, ObjectsKeepInsertionOrderAndSupportLookup) {
  const json::Value v = json::parse("{\"b\": 1, \"a\": [2, 3], \"c\": {}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.at("a").items().size(), 2u);
  EXPECT_EQ(v.at("a").items()[1].as_u64(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), InvalidInput);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, SurrogatePairsDecodeToSupplementaryCodepoints) {
  // U+1F600 as a high/low pair -> 4-byte UTF-8.
  EXPECT_EQ(json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // First and last supplementary codepoints.
  EXPECT_EQ(json::parse("\"\\ud800\\udc00\"").as_string(),
            "\xf0\x90\x80\x80");
  EXPECT_EQ(json::parse("\"\\udbff\\udfff\"").as_string(),
            "\xf4\x8f\xbf\xbf");
  // Mixed case hex digits and surrounding text survive.
  EXPECT_EQ(json::parse("\"a\\uD83D\\uDE00b\"").as_string(),
            "a\xf0\x9f\x98\x80" "b");
}

TEST(JsonParse, RejectsInvalidSurrogates) {
  // Lone high surrogate (end of string, non-escape follower, raw char).
  EXPECT_THROW((void)json::parse("\"\\ud800\""), InvalidInput);
  EXPECT_THROW((void)json::parse("\"\\ud800x\""), InvalidInput);
  EXPECT_THROW((void)json::parse("\"\\ud800\\n\""), InvalidInput);
  // Lone low surrogate, and an inverted pair.
  EXPECT_THROW((void)json::parse("\"\\udc00\""), InvalidInput);
  EXPECT_THROW((void)json::parse("\"\\udc00\\ud800\""), InvalidInput);
  // High followed by a non-surrogate escape, and two highs in a row.
  EXPECT_THROW((void)json::parse("\"\\ud800\\u0041\""), InvalidInput);
  EXPECT_THROW((void)json::parse("\"\\ud800\\ud800\""), InvalidInput);
  // Truncated low half.
  EXPECT_THROW((void)json::parse("\"\\ud800\\udc\""), InvalidInput);
}

TEST(JsonParse, ParseIsAStrictInverseOfEmit) {
  // Every byte string the emitter can be handed must round-trip exactly:
  // parse(append_quoted(s)) == s.  Exercise a deterministic sweep of all
  // single bytes plus pseudo-random byte strings (including ones that look
  // like escape fragments and multi-byte UTF-8).
  for (int b = 0; b < 256; ++b) {
    const std::string s(1, static_cast<char>(b));
    std::string doc;
    json::append_quoted(doc, s);
    EXPECT_EQ(json::parse(doc).as_string(), s) << "byte " << b;
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const std::size_t len = next() % 40;
    for (std::size_t i = 0; i < len; ++i) {
      s += static_cast<char>(next() % 256);
    }
    // Sprinkle in escape-looking fragments and real UTF-8.
    if (iter % 3 == 0) s += "\\ud800\\ude00";
    if (iter % 4 == 0) s += "\xf0\x9f\x98\x80\"\n";
    std::string doc;
    json::append_quoted(doc, s);
    ASSERT_EQ(json::parse(doc).as_string(), s) << "iter " << iter;
  }
}

TEST(JsonParse, ReEmittingAParsedEscapeIsCanonical) {
  // The emitter never produces \u for printable or supplementary
  // codepoints, so parse-then-emit canonicalizes a pair to raw UTF-8 —
  // and parsing the canonical form yields the same bytes again (the
  // emitter's fixed point).
  const std::string decoded = json::parse("\"\\ud83d\\ude00\"").as_string();
  std::string doc;
  json::append_quoted(doc, decoded);
  EXPECT_EQ(doc, "\"\xf0\x9f\x98\x80\"");
  EXPECT_EQ(json::parse(doc).as_string(), decoded);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), InvalidInput);
  EXPECT_THROW((void)json::parse("{"), InvalidInput);
  EXPECT_THROW((void)json::parse("{\"a\": }"), InvalidInput);
  EXPECT_THROW((void)json::parse("[1, 2,]"), InvalidInput);
  EXPECT_THROW((void)json::parse("nul"), InvalidInput);
  EXPECT_THROW((void)json::parse("\"unterminated"), InvalidInput);
  EXPECT_THROW((void)json::parse("\"raw\nnewline\""), InvalidInput);
  EXPECT_THROW((void)json::parse("{} trailing"), InvalidInput);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)json::parse(deep), InvalidInput);
}

TEST(JsonParse, AccessorsRejectKindMismatch) {
  const json::Value v = json::parse("{\"n\": 1}");
  EXPECT_THROW((void)v.as_string(), InvalidInput);
  EXPECT_THROW((void)v.items(), InvalidInput);
  EXPECT_THROW((void)v.at("n").as_bool(), InvalidInput);
  EXPECT_THROW((void)json::parse("[1]").members(), InvalidInput);
}

}  // namespace
