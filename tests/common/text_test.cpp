#include "common/text.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace ssm {
namespace {

TEST(Text, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Text, SplitKeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Text, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Text, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, IsIdentifier) {
  EXPECT_TRUE(is_identifier("x"));
  EXPECT_TRUE(is_identifier("_foo2"));
  EXPECT_TRUE(is_identifier("choosing1"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("2x"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Text, ParseIntValid) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
}

TEST(Text, ParseIntRejectsJunk) {
  EXPECT_THROW((void)parse_int(""), InvalidInput);
  EXPECT_THROW((void)parse_int("x"), InvalidInput);
  EXPECT_THROW((void)parse_int("1x"), InvalidInput);
  EXPECT_THROW((void)parse_int("1 "), InvalidInput);
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace ssm
