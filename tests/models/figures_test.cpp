// The paper's own worked examples, checked one by one with explicit
// commentary, plus the witness shapes the paper exhibits.
#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "litmus/suite.hpp"
#include "models/models.hpp"

namespace ssm::models {
namespace {

using history::HistoryBuilder;

history::SystemHistory fig1() {
  return HistoryBuilder(2, 2)
      .w("p", "x", 1)
      .r("p", "y", 0)
      .w("q", "y", 1)
      .r("q", "x", 0)
      .build();
}

TEST(Fig1, NotSequentiallyConsistent) {
  EXPECT_FALSE(make_sc()->check(fig1()).allowed);
}

TEST(Fig1, AllowedByTso) {
  const auto v = make_tso()->check(fig1());
  EXPECT_TRUE(v.allowed);
  ASSERT_EQ(v.views.size(), 2u);
  // Each processor's view holds its own 2 ops + the other's write.
  EXPECT_EQ(v.views[0].size(), 3u);
  EXPECT_EQ(v.views[1].size(), 3u);
  // Machine-check the witness.
  EXPECT_FALSE(make_tso()->verify_witness(fig1(), v).has_value());
}

TEST(Fig1, TsoWitnessHasCommonWriteOrder) {
  const auto v = make_tso()->check(fig1());
  ASSERT_TRUE(v.labeled_order.has_value());
  EXPECT_EQ(v.labeled_order->size(), 2u);
}

TEST(Fig2, PcButNotTso) {
  auto h = HistoryBuilder(3, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .w("q", "y", 1)
               .r("r", "y", 1)
               .r("r", "x", 0)
               .build();
  EXPECT_TRUE(make_pc()->check(h).allowed);
  EXPECT_FALSE(make_tso()->check(h).allowed);
  EXPECT_FALSE(make_sc()->check(h).allowed);
}

TEST(Fig3, PramButNotTso) {
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .r("p", "x", 1)
               .r("p", "x", 2)
               .w("q", "x", 2)
               .r("q", "x", 2)
               .r("q", "x", 1)
               .build();
  EXPECT_TRUE(make_pram()->check(h).allowed);
  EXPECT_FALSE(make_tso()->check(h).allowed);
  // Paper §3.5: each processor first reads its own value; PRAM lets the
  // other's write arrive between the reads.  Without coherence this is
  // fine; with it (PC) it is not.
  EXPECT_FALSE(make_pc()->check(h).allowed);
}

TEST(Fig4, CausalButNotTso) {
  auto h = HistoryBuilder(3, 3)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .w("q", "z", 1)
               .r("q", "x", 2)
               .w("r", "x", 2)
               .r("r", "x", 1)
               .r("r", "z", 1)
               .r("r", "y", 1)
               .build();
  EXPECT_TRUE(make_causal()->check(h).allowed);
  EXPECT_FALSE(make_tso()->check(h).allowed);
}

TEST(Fig4, PcCausalIncomparableWitnessOneDirection) {
  // Fig. 4 is causal but not PC (coherence on x cannot be agreed).
  auto h = HistoryBuilder(3, 3)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .w("q", "z", 1)
               .r("q", "x", 2)
               .w("r", "x", 2)
               .r("r", "x", 1)
               .r("r", "z", 1)
               .r("r", "y", 1)
               .build();
  EXPECT_FALSE(make_pc()->check(h).allowed);
}

TEST(Fig2, PcCausalIncomparableOtherDirection) {
  // Fig. 2 (WRC) is PC but not causal.
  auto h = HistoryBuilder(3, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .w("q", "y", 1)
               .r("r", "y", 1)
               .r("r", "x", 0)
               .build();
  EXPECT_TRUE(make_pc()->check(h).allowed);
  EXPECT_FALSE(make_causal()->check(h).allowed);
}

TEST(Section5, BakeryHistoryDistinguishesRcScFromRcPc) {
  const auto& t = litmus::find_test("bakery2-rcpc");
  EXPECT_FALSE(make_rc_sc()->check(t.hist).allowed);
  EXPECT_TRUE(make_rc_pc()->check(t.hist).allowed);
}

TEST(Section4, TsoStrictlyStrongerThanPcOnExamples) {
  // Every TSO-allowed example here is PC-allowed (containment direction).
  const auto h = fig1();
  ASSERT_TRUE(make_tso()->check(h).allowed);
  EXPECT_TRUE(make_pc()->check(h).allowed);
}

}  // namespace
}  // namespace ssm::models
