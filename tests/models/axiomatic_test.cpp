// The §6 three-way comparison, decided exactly: the paper's view-based
// TSO vs axiomatic TSO [17] vs the operational store-buffer machine.
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "litmus/suite.hpp"
#include "models/operational.hpp"
#include "models/registry.hpp"

namespace ssm::models {
namespace {

TEST(AxiomaticTso, LitmusSpotChecks) {
  const auto ax = make_tso_axiomatic();
  // Figure 1: allowed (loads perform before the buffered stores).
  EXPECT_TRUE(ax->check(litmus::find_test("fig1-sb").hist).allowed);
  // Forwarding: allowed by the axioms (the paper's TSO rejects it).
  EXPECT_TRUE(ax->check(litmus::find_test("sb-fwd").hist).allowed);
  EXPECT_FALSE(make_tso()->check(litmus::find_test("sb-fwd").hist).allowed);
  // Coherence violations: forbidden.
  EXPECT_FALSE(ax->check(litmus::find_test("corr").hist).allowed);
  EXPECT_FALSE(ax->check(litmus::find_test("fig3-pram").hist).allowed);
  // Message passing: forbidden (stores in order, loads in order).
  EXPECT_FALSE(ax->check(litmus::find_test("mp").hist).allowed);
  // Load buffering: forbidden (loads cannot pass later stores... loads
  // precede their own later stores in M and must read earlier stores).
  EXPECT_FALSE(ax->check(litmus::find_test("lb").hist).allowed);
}

TEST(AxiomaticTso, WitnessesVerify) {
  const auto ax = make_tso_axiomatic();
  for (const char* name : {"fig1-sb", "sb-fwd", "coww-ra", "tas-handoff"}) {
    const auto& t = litmus::find_test(name);
    const auto v = ax->check(t.hist);
    ASSERT_TRUE(v.allowed) << name;
    EXPECT_FALSE(ax->verify_witness(t.hist, v).has_value()) << name;
  }
}

TEST(AxiomaticTso, EquivalentToForwardingTsoOverExhaustiveUniverse) {
  const auto ax = make_tso_axiomatic();
  const auto fwd = make_tso_fwd();
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::uint64_t diff = 0;
  std::string witness;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    if (ax->check(h).allowed != fwd->check(h).allowed) {
      if (diff++ == 0) witness = history::format_history(h);
    }
    return true;
  });
  EXPECT_EQ(diff, 0u) << "TSOax and TSOfwd disagree on:\n" << witness;
}

TEST(AxiomaticTso, EquivalentToStoreBufferMachineOverExhaustiveUniverse) {
  const auto ax = make_tso_axiomatic();
  const auto machine = make_operational("tso");
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::uint64_t diff = 0;
  std::string witness;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    if (ax->check(h).allowed != machine->check(h).allowed) {
      if (diff++ == 0) witness = history::format_history(h);
    }
    return true;
  });
  EXPECT_EQ(diff, 0u) << "TSOax and the tso machine disagree on:\n"
                      << witness;
}

TEST(AxiomaticTso, StrictlyWeakerThanPaperTsoAt3Ops) {
  // The paper's TSO ⊆ TSOax, strictly: sb-fwd separates them.  Check the
  // containment direction on a random sample.
  const auto ax = make_tso_axiomatic();
  const auto paper = make_tso();
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(0xACE);
  for (int i = 0; i < 100; ++i) {
    const auto h = lattice::random_history(spec, rng);
    if (paper->check(h).allowed) {
      EXPECT_TRUE(ax->check(h).allowed) << history::format_history(h);
    }
  }
}

TEST(AxiomaticTso, RmwAtomicityEnforced) {
  EXPECT_FALSE(
      make_tso_axiomatic()->check(litmus::find_test("tas-mutex").hist)
          .allowed);
  EXPECT_TRUE(
      make_tso_axiomatic()->check(litmus::find_test("tas-handoff").hist)
          .allowed);
}

}  // namespace
}  // namespace ssm::models
