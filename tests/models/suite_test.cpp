// Parameterized check of the entire built-in litmus suite against every
// model with a recorded expectation (the library's regression matrix).
#include <gtest/gtest.h>

#include "litmus/parser.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::models {
namespace {

struct SuiteCase {
  std::string test;
  std::string model;
  bool expected;
};

std::vector<SuiteCase> all_cases() {
  std::vector<SuiteCase> cases;
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& [model, expected] : t.expectations) {
      cases.push_back({t.name, model, expected});
    }
  }
  return cases;
}

class LitmusSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(LitmusSuite, MatchesExpectation) {
  const SuiteCase& c = GetParam();
  const auto& t = litmus::find_test(c.test);
  const auto model = make_model(c.model);
  const auto verdict = model->check(t.hist);
  EXPECT_EQ(verdict.allowed, c.expected)
      << c.test << " under " << c.model << ": expected "
      << (c.expected ? "allowed" : "forbidden") << "\n"
      << litmus::to_dsl(t);
}

std::string case_name(const ::testing::TestParamInfo<SuiteCase>& info) {
  std::string n = info.param.test + "_" + info.param.model;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllExpectations, LitmusSuite,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace ssm::models
