// Property test: every positive verdict any model produces on any suite
// history must carry a witness that the model itself can machine-check.
#include <gtest/gtest.h>

#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::models {
namespace {

struct WitnessCase {
  std::string test;
  std::string model;
};

std::vector<WitnessCase> all_cases() {
  std::vector<WitnessCase> cases;
  for (const auto& t : litmus::builtin_suite()) {
    for (const auto& name : model_names()) {
      cases.push_back({t.name, name});
    }
  }
  return cases;
}

class WitnessProperty : public ::testing::TestWithParam<WitnessCase> {};

TEST_P(WitnessProperty, PositiveVerdictsVerify) {
  const auto& c = GetParam();
  const auto& t = litmus::find_test(c.test);
  const auto model = make_model(c.model);
  const auto verdict = model->check(t.hist);
  if (!verdict.allowed) {
    SUCCEED() << "forbidden; nothing to verify";
    return;
  }
  const auto err = model->verify_witness(t.hist, verdict);
  EXPECT_FALSE(err.has_value())
      << c.test << " under " << c.model << ": " << err.value_or("");
}

std::string case_name(const ::testing::TestParamInfo<WitnessCase>& info) {
  std::string n = info.param.test + "_" + info.param.model;
  for (char& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllSuiteHistories, WitnessProperty,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace ssm::models
