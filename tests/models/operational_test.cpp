// Declarative ↔ operational correspondence, BOTH directions, decided over
// exhaustively enumerated universes (the executable version of the
// paper's §6 comparison of specification styles).
//
//   soundness:    machine-reachable  ⊆  declaratively-admitted
//   completeness: declaratively-admitted  ⊆  machine-reachable
//
// For SC and PRAM both directions hold exactly on small universes (the
// machines realize the models).  For TSO the *paper's* characterization
// is strictly stronger than the machine (the store-forwarding divergence:
// sb-fwd is reachable yet rejected); the forwarding variant TSOfwd closes
// the gap on these universes.
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "litmus/suite.hpp"
#include "models/operational.hpp"
#include "models/registry.hpp"

namespace ssm::models {
namespace {

struct Correspondence {
  const char* machine;
  const char* model;
  bool expect_sound;     // machine ⊆ model
  bool expect_complete;  // model ⊆ machine
};

class OperationalEquivalence
    : public ::testing::TestWithParam<Correspondence> {};

TEST_P(OperationalEquivalence, OverExhaustiveUniverse) {
  const auto& c = GetParam();
  const auto op_model = make_operational(c.machine);
  const auto decl_model = make_model(c.model);
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::uint64_t unsound = 0, incomplete = 0, agreements = 0;
  std::string unsound_witness, incomplete_witness;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    const bool reachable = op_model->check(h).allowed;
    const bool admitted = decl_model->check(h).allowed;
    if (reachable && !admitted) {
      if (unsound++ == 0) unsound_witness = history::format_history(h);
    }
    if (admitted && !reachable) {
      if (incomplete++ == 0) {
        incomplete_witness = history::format_history(h);
      }
    }
    if (reachable == admitted) ++agreements;
    return true;
  });
  if (c.expect_sound) {
    EXPECT_EQ(unsound, 0u) << "machine trace rejected by " << c.model
                           << ":\n"
                           << unsound_witness;
  } else {
    EXPECT_GT(unsound, 0u);
  }
  if (c.expect_complete) {
    EXPECT_EQ(incomplete, 0u)
        << c.model << " admits an unreachable history:\n"
        << incomplete_witness;
  } else {
    EXPECT_GT(incomplete, 0u);
  }
  EXPECT_GT(agreements, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Universe2x2x2, OperationalEquivalence,
    ::testing::Values(
        // Exact correspondences.
        Correspondence{"sc", "SC", true, true},
        Correspondence{"causal", "Causal", true, true},
        Correspondence{"tso", "TSOfwd", true, true},
        // PRAM and Goodman-PC declaratively admit load-buffering shapes
        // (a read ordered after a write that program-order-follows it in
        // another view) which no replica machine can reach without
        // speculation — sound but NOT complete.  A real, documented gap
        // between the view-based style and realizable implementations.
        Correspondence{"pram", "PRAM", true, false},
        Correspondence{"coherent", "PCg", true, false},
        // The paper's TSO is sound for the machine's traces only up to
        // forwarding; on a 2-ops universe no forwarded read can feed a
        // later same-processor read, so both directions still hold here —
        // the divergence needs 3 ops (next test).
        Correspondence{"tso", "TSO", true, true}),
    [](const ::testing::TestParamInfo<Correspondence>& param) {
      std::string n = std::string(param.param.machine) + "_vs_" +
                      param.param.model;
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(OperationalEquivalenceLabeled, RcScMachineSoundOverLabeledUniverse) {
  // Exhaustive labeled universe (one sync + one data location): every
  // trace the rc-sc machine can reach is RCsc-admitted.  Completeness
  // fails (RCsc admits more — e.g. load-buffering-style freedom), which
  // we record rather than assert away.
  const auto op_model = make_operational("rc-sc");
  const auto rcsc = make_rc_sc();
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  spec.sync_locs = 1;
  std::uint64_t unsound = 0, reachable_count = 0, incomplete = 0;
  std::string witness;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    const bool reachable = op_model->check(h).allowed;
    if (!reachable) {
      if (rcsc->check(h).allowed) ++incomplete;
      return true;
    }
    ++reachable_count;
    if (!rcsc->check(h).allowed) {
      if (unsound++ == 0) witness = history::format_history(h);
    }
    return true;
  });
  EXPECT_EQ(unsound, 0u) << "rc-sc machine reached a trace RCsc rejects:\n"
                         << witness;
  EXPECT_GT(reachable_count, 0u);
  EXPECT_GT(incomplete, 0u);  // the declarative model is strictly larger
}

TEST(OperationalDivergence, PaperTsoRejectsReachableForwardingTrace) {
  // The sb-fwd litmus history is reachable on the TSO machine but
  // rejected by the paper's TSO — the §3.2 equivalence claim fails
  // exactly here, while TSOfwd accepts it.
  const auto& t = ::ssm::litmus::find_test("sb-fwd");
  EXPECT_TRUE(make_operational("tso")->check(t.hist).allowed);
  EXPECT_FALSE(make_tso()->check(t.hist).allowed);
  EXPECT_TRUE(make_tso_fwd()->check(t.hist).allowed);
}

TEST(OperationalDivergence, RcPcMachineSoundForRcGoodman) {
  // Machine-reachable ⇒ RCg-admitted on the labeled figures.  (bakery2 is
  // beyond exhaustive exploration — 14 operations — and is covered by the
  // adversarial-schedule tests in tests/bakery.)
  for (const char* name : {"sb-labeled", "mp-rel-acq", "mp-rel-acq-broken",
                           "wrc-rel-acq-stale", "wrc-rel-acq-fresh"}) {
    const auto& t = ::ssm::litmus::find_test(name);
    if (make_operational("rc-pc")->check(t.hist).allowed) {
      EXPECT_TRUE(make_rc_goodman()->check(t.hist).allowed) << name;
    }
  }
}

TEST(OperationalDivergence, RcPcMachineIsCumulativeUnlikeDeclarativeRc) {
  // The machine's acquire-dependency (causal) delivery publishes
  // TRANSITIVELY: once q's release g is visible anywhere, the data p
  // published before the release q acquired is visible there too.  The
  // paper's RC_pc (and RCg) are non-cumulative — they admit the stale
  // outcome.  So the natural causal-delivery implementation is strictly
  // stronger than the declarative definition on transitive publication.
  const auto& stale = ::ssm::litmus::find_test("wrc-rel-acq-stale");
  EXPECT_FALSE(make_operational("rc-pc")->check(stale.hist).allowed);
  EXPECT_TRUE(make_rc_pc()->check(stale.hist).allowed);
  EXPECT_TRUE(make_rc_goodman()->check(stale.hist).allowed);
  // The non-stale companion is reachable, so the gap is exactly the
  // cumulativity.
  const auto& fresh = ::ssm::litmus::find_test("wrc-rel-acq-fresh");
  EXPECT_TRUE(make_operational("rc-pc")->check(fresh.hist).allowed);
}

TEST(OperationalDivergence, RcScMachineSoundForRcSc) {
  for (const char* name :
       {"mp-rel-acq", "mp-rel-acq-broken", "sb-labeled", "wo-vs-rcsc"}) {
    const auto& t = ::ssm::litmus::find_test(name);
    if (make_operational("rc-sc")->check(t.hist).allowed) {
      EXPECT_TRUE(make_rc_sc()->check(t.hist).allowed) << name;
    }
  }
}

}  // namespace
}  // namespace ssm::models
