// Weak ordering and hybrid consistency specifics: fence strength relative
// to release consistency, and HC's weak-weak freedom.
#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "models/models.hpp"

namespace ssm::models {
namespace {

using history::HistoryBuilder;

TEST(WeakOrdering, PostReleaseWriteFenced) {
  // Ordinary write AFTER a labeled write: WO orders it after the sync op
  // everywhere; RC (both flavours) leaves it free.
  auto h = HistoryBuilder(2, 2)
               .wl("p", "f", 1)
               .w("p", "d", 1)
               .r("q", "d", 1)
               .rl("q", "f", 0)
               .build();
  EXPECT_FALSE(make_weak_ordering()->check(h).allowed);
  EXPECT_TRUE(make_rc_sc()->check(h).allowed);
  EXPECT_TRUE(make_rc_pc()->check(h).allowed);
}

TEST(WeakOrdering, SyncOpsAreSequentiallyConsistent) {
  // Labeled store buffering: forbidden by WO just as by RC_sc.
  auto h = HistoryBuilder(2, 2)
               .wl("p", "x", 1)
               .rl("p", "y", 0)
               .wl("q", "y", 1)
               .rl("q", "x", 0)
               .build();
  EXPECT_FALSE(make_weak_ordering()->check(h).allowed);
}

TEST(WeakOrdering, PublishesLikeReleaseConsistency) {
  auto stale = HistoryBuilder(2, 2)
                   .w("p", "d", 1)
                   .wl("p", "f", 1)
                   .rl("q", "f", 1)
                   .r("q", "d", 0)
                   .build();
  EXPECT_FALSE(make_weak_ordering()->check(stale).allowed);
  auto fresh = HistoryBuilder(2, 2)
                   .w("p", "d", 1)
                   .wl("p", "f", 1)
                   .rl("q", "f", 1)
                   .r("q", "d", 1)
                   .build();
  EXPECT_TRUE(make_weak_ordering()->check(fresh).allowed);
}

TEST(WeakOrdering, UnlabeledHistoriesKeepCoherenceOnly) {
  // No sync ops: WO degenerates to coherence + own-view ppo, admitting
  // store buffering but rejecting coherence violations.
  auto sb = HistoryBuilder(2, 2)
                .w("p", "x", 1)
                .r("p", "y", 0)
                .w("q", "y", 1)
                .r("q", "x", 0)
                .build();
  EXPECT_TRUE(make_weak_ordering()->check(sb).allowed);
  auto corr = HistoryBuilder(2, 1)
                  .w("p", "x", 1)
                  .w("p", "x", 2)
                  .r("q", "x", 2)
                  .r("q", "x", 1)
                  .build();
  EXPECT_FALSE(make_weak_ordering()->check(corr).allowed);
}

TEST(Hybrid, WeakOperationsCompletelyUnordered) {
  // HC has no coherence for weak ops: CoRR is admitted.
  auto corr = HistoryBuilder(2, 1)
                  .w("p", "x", 1)
                  .w("p", "x", 2)
                  .r("q", "x", 2)
                  .r("q", "x", 1)
                  .build();
  EXPECT_TRUE(make_hybrid()->check(corr).allowed);
  EXPECT_FALSE(make_weak_ordering()->check(corr).allowed);
}

TEST(Hybrid, StrongOpsAreSequentiallyConsistent) {
  auto h = HistoryBuilder(2, 2)
               .wl("p", "x", 1)
               .rl("p", "y", 0)
               .wl("q", "y", 1)
               .rl("q", "x", 0)
               .build();
  EXPECT_FALSE(make_hybrid()->check(h).allowed);
}

TEST(Hybrid, WeakOpsOrderedAgainstStrongOnes) {
  // w(d)1 before the strong write; strong read of f pins d's visibility.
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .r("q", "d", 0)
               .build();
  EXPECT_FALSE(make_hybrid()->check(h).allowed);
}

TEST(Hybrid, ImproperLabelingRejected) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).rl("q", "x", 1).build();
  const auto v = make_hybrid()->check(h);
  EXPECT_FALSE(v.allowed);
  EXPECT_NE(v.note.find("improperly labeled"), std::string::npos);
}

TEST(WoHc, WitnessesVerify) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .r("q", "d", 1)
               .build();
  for (auto maker : {make_weak_ordering, make_hybrid}) {
    const auto m = maker();
    const auto v = m->check(h);
    ASSERT_TRUE(v.allowed) << m->name();
    EXPECT_FALSE(m->verify_witness(h, v).has_value()) << m->name();
  }
}

}  // namespace
}  // namespace ssm::models
