// The paper's hand-written witness views, machine-checked verbatim.
#include <gtest/gtest.h>

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "history/builder.hpp"
#include "order/orders.hpp"
#include "order/semi_causal.hpp"

namespace ssm::models {
namespace {

using checker::verify_view;
using history::HistoryBuilder;

TEST(PaperViews, Figure1TsoViews) {
  // §3.2: "S_{p+w}: r_p(y)0 w_p(x)1 w_q(y)1,
  //        S_{q+w}: r_q(x)0 w_p(x)1 w_q(y)1".
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)   // 0
               .r("p", "y", 0)   // 1
               .w("q", "y", 1)   // 2
               .r("q", "x", 0)   // 3
               .build();
  const auto ppo = order::partial_program_order(h);
  // Common write order w_p(x)1 < w_q(y)1 as chain constraints.
  rel::Relation constraints = ppo;
  constraints.add(0, 2);
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 0), constraints,
                           {1, 0, 2})
                   .has_value());
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 1), constraints,
                           {3, 0, 2})
                   .has_value());
}

TEST(PaperViews, Figure1ViewsRespectOnlyPpoNotPo) {
  // The same views violate FULL program order (q's read precedes its
  // write) — the paper notes this is allowed precisely because ppo drops
  // the write→read pair.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  const auto po = order::program_order(h);
  EXPECT_TRUE(verify_view(h, checker::own_plus_writes(h, 1), po, {3, 0, 2})
                  .has_value());
}

TEST(PaperViews, Figure3PramViews) {
  // §3.5: "S_{p+w} = w_p(x)1 r_p(x)1 w_q(x)2 r_p(x)2 and
  //        S_{q+w} = w_q(x)2 r_q(x)2 w_p(x)1 r_q(x)1".
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)   // 0
               .r("p", "x", 1)   // 1
               .r("p", "x", 2)   // 2
               .w("q", "x", 2)   // 3
               .r("q", "x", 2)   // 4
               .r("q", "x", 1)   // 5
               .build();
  const auto po = order::program_order(h);
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 0), po,
                           {0, 1, 3, 2})
                   .has_value());
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 1), po,
                           {3, 4, 0, 5})
                   .has_value());
}

TEST(PaperViews, Figure2PcViews) {
  // §3.3: "S_{p+w}: w_p(x)1 w_q(y)1
  //        S_{q+w}: w_p(x)1 r_q(x)1 w_q(y)1
  //        S_{r+w}: w_q(y)1 r_r(y)1 r_r(x)0 w_p(x)1".
  auto h = HistoryBuilder(3, 2)
               .w("p", "x", 1)   // 0
               .r("q", "x", 1)   // 1
               .w("q", "y", 1)   // 2
               .r("r", "y", 1)   // 3
               .r("r", "x", 0)   // 4
               .build();
  // Unique coherence order (single write per location); sem accordingly.
  order::CoherenceOrder coh(h.size(), {{0}, {2}});
  const auto ppo = order::partial_program_order(h);
  const rel::Relation constraints =
      order::semi_causal(h, ppo, coh) | coh.as_relation();
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 0), constraints,
                           {0, 2})
                   .has_value());
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 1), constraints,
                           {0, 1, 2})
                   .has_value());
  EXPECT_FALSE(verify_view(h, checker::own_plus_writes(h, 2), constraints,
                           {2, 3, 4, 0})
                   .has_value());
}

}  // namespace
}  // namespace ssm::models
