// Release-consistency specifics: bracket conditions, labeling rules, and
// the paper's §3.4 erratum (see rc.cpp header comment).
#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "models/models.hpp"

namespace ssm::models {
namespace {

using history::HistoryBuilder;

TEST(ReleaseConsistency, ReleaseBracketPublishesData) {
  // Ordinary w(d)1 before release w*(f)1; acquire r*(f)1 then ordinary
  // read of d must see 1.
  auto stale = HistoryBuilder(2, 2)
                   .w("p", "d", 1)
                   .wl("p", "f", 1)
                   .rl("q", "f", 1)
                   .r("q", "d", 0)
                   .build();
  EXPECT_FALSE(make_rc_sc()->check(stale).allowed);
  EXPECT_FALSE(make_rc_pc()->check(stale).allowed);

  auto fresh = HistoryBuilder(2, 2)
                   .w("p", "d", 1)
                   .wl("p", "f", 1)
                   .rl("q", "f", 1)
                   .r("q", "d", 1)
                   .build();
  EXPECT_TRUE(make_rc_sc()->check(fresh).allowed);
  EXPECT_TRUE(make_rc_pc()->check(fresh).allowed);
}

TEST(ReleaseConsistency, UnlabeledDataRacesAreUnordered) {
  // Without the release/acquire labels the same shape is admitted: RC
  // propagates ordinary writes independently (only the issuer's own view
  // keeps ppo).
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .w("p", "f", 1)
               .r("q", "f", 1)
               .r("q", "d", 0)
               .build();
  EXPECT_TRUE(make_rc_sc()->check(h).allowed);
  EXPECT_TRUE(make_rc_pc()->check(h).allowed);
}

TEST(ReleaseConsistency, AcquireOfInitialValueImposesNoBracket) {
  // The acquire reads the initial value: there is no acquired write, so
  // later ordinary operations are not pinned behind anything.
  auto h = HistoryBuilder(2, 2)
               .rl("q", "f", 0)
               .r("q", "d", 0)
               .w("p", "d", 1)
               .build();
  EXPECT_TRUE(make_rc_sc()->check(h).allowed);
}

TEST(ReleaseConsistency, LabeledSbSeparatesVariants) {
  auto h = HistoryBuilder(2, 2)
               .wl("p", "x", 1)
               .rl("p", "y", 0)
               .wl("q", "y", 1)
               .rl("q", "x", 0)
               .build();
  EXPECT_FALSE(make_rc_sc()->check(h).allowed);
  EXPECT_TRUE(make_rc_pc()->check(h).allowed);
}

TEST(ReleaseConsistency, ImproperLabelingRejected) {
  // Labeled read observing an ordinary write: improperly labeled history.
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .rl("q", "x", 1)
               .build();
  const auto v = make_rc_sc()->check(h);
  EXPECT_FALSE(v.allowed);
  EXPECT_NE(v.note.find("improperly labeled"), std::string::npos);
}

TEST(ReleaseConsistency, CoherenceAppliesToOrdinaryWrites) {
  // Even ordinary writes to the same location keep a common order
  // (paper §3.4: "coherence is required even for ordinary operations").
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .w("p", "x", 2)
               .r("q", "x", 2)
               .r("q", "x", 1)
               .build();
  EXPECT_FALSE(make_rc_sc()->check(h).allowed);
  EXPECT_FALSE(make_rc_pc()->check(h).allowed);
}

TEST(ReleaseConsistency, ErratumLiteralReadingWouldBreakPublication) {
  // Paper §3.4's second bracket bullet literally says the ordinary op o
  // (which precedes the release in program order) "follows o_w in all
  // histories".  Under that reading the data write may be ordered AFTER
  // the release in other views, so the stale-read history below would be
  // admitted even by RC_sc — i.e. release/acquire would not publish data
  // at all, contradicting the section's own prose.  We assert our
  // corrected implementation forbids it; this test documents the erratum.
  auto stale = HistoryBuilder(2, 2)
                   .w("p", "d", 1)
                   .wl("p", "f", 1)
                   .rl("q", "f", 1)
                   .r("q", "d", 0)
                   .build();
  EXPECT_FALSE(make_rc_sc()->check(stale).allowed);
}

TEST(ReleaseConsistency, RcScWitnessCarriesLabeledOrder) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .r("q", "d", 1)
               .build();
  const auto v = make_rc_sc()->check(h);
  ASSERT_TRUE(v.allowed);
  ASSERT_TRUE(v.labeled_order.has_value());
  EXPECT_EQ(v.labeled_order->size(), 2u);
  ASSERT_TRUE(v.coherence.has_value());
}

TEST(ReleaseConsistency, NoLabelsDegeneratesToCoherentPpo) {
  // With no labeled operations at all, RC_sc == RC_pc == "ppo in own view
  // + coherence"; store buffering is admitted.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  EXPECT_TRUE(make_rc_sc()->check(h).allowed);
  EXPECT_TRUE(make_rc_pc()->check(h).allowed);
}

}  // namespace
}  // namespace ssm::models
