// The paper's §4 proof, made executable per instance.
//
// The paper argues TSO ⊆ PC by *witness reuse*: "We show that the S_{p+w}
// given by TSO can also be used to demonstrate that H is PC" — the common
// write order restricted per location satisfies PC's coherence
// requirement, and the semi-causality order is respected by the same
// views.  Here we replay that argument mechanically on random histories:
// whenever TSO admits, we take TSO's witness views verbatim, derive the
// coherence order from the witness's global write order, and verify the
// views against PC's own constraints.
#include <gtest/gtest.h>

#include "checker/scope.hpp"
#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "models/models.hpp"
#include "order/semi_causal.hpp"

namespace ssm::models {
namespace {

/// PC coherence order derived from a total write order: per location, the
/// subsequence of that location's writes.
order::CoherenceOrder coherence_from_write_order(
    const history::SystemHistory& h, const checker::View& write_order) {
  std::vector<std::vector<OpIndex>> per_loc(h.num_locations());
  for (OpIndex w : write_order) {
    per_loc[h.op(w).loc].push_back(w);
  }
  return order::CoherenceOrder(h.size(), std::move(per_loc));
}

TEST(Section4Proof, TsoWitnessesSatisfyPcConstraints) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(0x5EC4);
  const auto tso = make_tso();
  int exercised = 0;
  for (int i = 0; i < 200; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto verdict = tso->check(h);
    if (!verdict.allowed) continue;
    ++exercised;
    ASSERT_TRUE(verdict.labeled_order.has_value());
    const auto coh = coherence_from_write_order(h, *verdict.labeled_order);
    const auto ppo = order::partial_program_order(h);
    const rel::Relation constraints =
        order::semi_causal(h, ppo, coh) | coh.as_relation();
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      const auto err =
          checker::verify_view(h, checker::own_plus_writes(h, p),
                               constraints, verdict.views[p]);
      EXPECT_FALSE(err.has_value())
          << "the paper's §4 witness-reuse argument failed on processor "
          << p << " of\n"
          << history::format_history(h) << "error: " << err.value_or("");
    }
  }
  EXPECT_GT(exercised, 20);
}

TEST(Section4Proof, ThreeProcessorHistoriesToo) {
  lattice::EnumerationSpec spec;
  spec.procs = 3;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  Rng rng(0x5EC5);
  const auto tso = make_tso();
  int exercised = 0;
  for (int i = 0; i < 100; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto verdict = tso->check(h);
    if (!verdict.allowed) continue;
    ++exercised;
    const auto coh = coherence_from_write_order(h, *verdict.labeled_order);
    const auto ppo = order::partial_program_order(h);
    const rel::Relation constraints =
        order::semi_causal(h, ppo, coh) | coh.as_relation();
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      EXPECT_FALSE(checker::verify_view(h, checker::own_plus_writes(h, p),
                                        constraints, verdict.views[p])
                       .has_value());
    }
  }
  EXPECT_GT(exercised, 5);
}

}  // namespace
}  // namespace ssm::models
