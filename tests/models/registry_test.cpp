#include "models/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssm::models {
namespace {

TEST(Registry, AllModelsHaveUniqueNames) {
  std::set<std::string> names;
  for (const auto& m : all_models()) {
    EXPECT_TRUE(names.insert(std::string(m->name())).second)
        << "duplicate model name " << m->name();
    EXPECT_FALSE(std::string(m->description()).empty()) << m->name();
  }
  EXPECT_GE(names.size(), 16u);
}

TEST(Registry, PaperModelsAreTheSevenFromSection3) {
  const auto models = paper_models();
  ASSERT_EQ(models.size(), 7u);
  const std::set<std::string> expected{"SC",  "TSO",  "PC",  "RCsc",
                                       "RCpc", "Causal", "PRAM"};
  std::set<std::string> actual;
  for (const auto& m : models) actual.insert(std::string(m->name()));
  EXPECT_EQ(actual, expected);
}

TEST(Registry, MakeModelRoundTripsEveryName) {
  for (const auto& name : model_names()) {
    const auto m = make_model(name);
    EXPECT_EQ(m->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_model("NotAModel"), InvalidInput);
}

TEST(Registry, StrongestFirstOrdering) {
  const auto names = model_names();
  EXPECT_EQ(names.front(), "SC");
  EXPECT_EQ(names.back(), "Local");
}

}  // namespace
}  // namespace ssm::models
