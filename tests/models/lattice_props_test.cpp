// Property tests of the paper's Figure 5 containments on random histories:
// whenever a stronger model admits a history, every weaker model must too.
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "lattice/inclusion.hpp"
#include "models/models.hpp"

namespace ssm::models {
namespace {

// The proven Figure 5 edges live in lattice::figure5_containments() — the
// same ground truth the fuzzing oracle enforces at scale (src/fuzz).
using lattice::Containment;

ModelPtr by_name(std::string_view name) {
  for (auto maker : {make_sc, make_tso, make_tso_fwd, make_pc, make_goodman,
                     make_pram, make_causal, make_cache, make_slow,
                     make_local, make_causal_coherent,
                     make_causal_coherent_labeled, make_rc_sc,
                     make_rc_pc, make_rc_goodman, make_weak_ordering,
                     make_hybrid}) {
    auto m = maker();
    if (m->name() == name) return m;
  }
  ADD_FAILURE() << "unknown model " << name;
  return nullptr;
}

class ContainmentProperty
    : public ::testing::TestWithParam<Containment> {};

TEST_P(ContainmentProperty, HoldsOnRandomHistories) {
  const auto& c = GetParam();
  const auto strong = by_name(c.stronger);
  const auto weak = by_name(c.weaker);
  ASSERT_TRUE(strong && weak);
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(20260705);
  int admitted_by_strong = 0;
  for (int i = 0; i < 200; ++i) {
    const auto h = lattice::random_history(spec, rng);
    if (!strong->check(h).allowed) continue;
    ++admitted_by_strong;
    EXPECT_TRUE(weak->check(h).allowed)
        << c.stronger << " admits but " << c.weaker << " rejects:\n"
        << history::format_history(h);
  }
  // The sample must actually exercise the property.
  EXPECT_GT(admitted_by_strong, 0);
}

std::string containment_name(
    const ::testing::TestParamInfo<Containment>& info) {
  return std::string(info.param.stronger) + "_in_" + info.param.weaker;
}

INSTANTIATE_TEST_SUITE_P(Figure5, ContainmentProperty,
                         ::testing::ValuesIn(lattice::figure5_containments()),
                         containment_name);

TEST(Figure5Separations, KnownWitnessesExist) {
  // Strictness needs witnesses the other way; the litmus suite provides
  // them (fig1 separates SC/TSO, fig2 separates TSO/PC and Causal/PC,
  // fig3 separates TSO/PRAM and PC/Causal-side, fig4 separates PC/Causal).
  SUCCEED();
}

}  // namespace
}  // namespace ssm::models
