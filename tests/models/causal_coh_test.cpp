// The paper's §7 "new memories": causal + coherence, in both the
// all-writes and labeled-writes-only variants.
#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "models/models.hpp"

namespace ssm::models {
namespace {

using history::HistoryBuilder;

history::SystemHistory corw2(bool labeled) {
  HistoryBuilder b(4, 1);
  if (labeled) {
    b.wl("p", "x", 1).wl("q", "x", 2);
    b.rl("r", "x", 1).rl("r", "x", 2);
    b.rl("s", "x", 2).rl("s", "x", 1);
  } else {
    b.w("p", "x", 1).w("q", "x", 2);
    b.r("r", "x", 1).r("r", "x", 2);
    b.r("s", "x", 2).r("s", "x", 1);
  }
  return b.build();
}

TEST(CausalCoherent, ForbidsTwoWriterDivergence) {
  EXPECT_FALSE(make_causal_coherent()->check(corw2(false)).allowed);
  EXPECT_TRUE(make_causal()->check(corw2(false)).allowed);
}

TEST(CausalCoherentLabeled, OrdinaryWritesStayMerelyCausal) {
  // With no labeled writes the coherence requirement is vacuous:
  // CausalCohL degenerates to causal memory and admits the divergence.
  EXPECT_TRUE(make_causal_coherent_labeled()->check(corw2(false)).allowed);
}

TEST(CausalCoherentLabeled, LabeledWritesAreCoherent) {
  EXPECT_FALSE(make_causal_coherent_labeled()->check(corw2(true)).allowed);
}

TEST(CausalCoherentLabeled, MixedHistorySplitsByLabel) {
  // Same divergence pattern on an ordinary location is fine while the
  // labeled location stays coherent.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "x", 1)
               .r("p", "x", 2)
               .w("q", "x", 2)
               .r("q", "x", 2)
               .r("q", "x", 1)
               .build();
  EXPECT_TRUE(make_causal_coherent_labeled()->check(h).allowed);
  EXPECT_FALSE(make_causal_coherent()->check(h).allowed);
}

TEST(CausalCoherentLabeled, WitnessVerifies) {
  const auto m = make_causal_coherent_labeled();
  const auto h = corw2(false);
  const auto v = m->check(h);
  ASSERT_TRUE(v.allowed);
  EXPECT_FALSE(m->verify_witness(h, v).has_value());
}

TEST(CausalCoherentLabeled, StillRequiresCausality) {
  // Message passing (a causal violation) stays forbidden.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .r("q", "x", 0)
               .build();
  EXPECT_FALSE(make_causal_coherent_labeled()->check(h).allowed);
}

}  // namespace
}  // namespace ssm::models
