// Property sweep over random histories: for EVERY model, every positive
// verdict must carry a witness the model itself re-verifies, and negative
// verdicts must be stable under re-checking (determinism).  This is the
// broadest single net over the whole checker engine.
#include <gtest/gtest.h>

#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "models/registry.hpp"

namespace ssm::models {
namespace {

class RandomWitness : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomWitness, WitnessesVerifyOnRandomHistories) {
  const auto model = make_model(GetParam());
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  Rng rng(0xABCDEF);
  int allowed_count = 0;
  for (int i = 0; i < 150; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto v = model->check(h);
    if (v.allowed) {
      ++allowed_count;
      const auto err = model->verify_witness(h, v);
      EXPECT_FALSE(err.has_value())
          << model->name() << " emitted a bad witness on\n"
          << history::format_history(h) << "error: " << err.value_or("");
    }
    // Determinism: a second check agrees.
    EXPECT_EQ(model->check(h).allowed, v.allowed) << model->name();
  }
  EXPECT_GT(allowed_count, 0) << "sweep never exercised the witness path";
}

TEST_P(RandomWitness, ThreeProcessorHistories) {
  const auto model = make_model(GetParam());
  lattice::EnumerationSpec spec;
  spec.procs = 3;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  Rng rng(0x13579B);
  for (int i = 0; i < 60; ++i) {
    const auto h = lattice::random_history(spec, rng);
    const auto v = model->check(h);
    if (v.allowed) {
      EXPECT_FALSE(model->verify_witness(h, v).has_value())
          << model->name() << " on\n"
          << history::format_history(h);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RandomWitness, ::testing::ValuesIn(model_names()),
    [](const ::testing::TestParamInfo<std::string>& param) {
      return param.param;
    });

}  // namespace
}  // namespace ssm::models
