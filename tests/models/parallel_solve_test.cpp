// Parallel solve_per_processor: concurrent per-processor view searches
// with early cancellation through the shared stop token.
#include "models/per_processor.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "checker/scope.hpp"
#include "common/thread_pool.hpp"
#include "history/builder.hpp"
#include "models/registry.hpp"
#include "order/orders.hpp"

namespace ssm::models {
namespace {

using common::ThreadPool;
using history::HistoryBuilder;

struct SerialAtExit {
  ~SerialAtExit() { ThreadPool::set_global_jobs(1); }
};

TEST(SearchControl, PreCancelledSearchStopsImmediately) {
  // A satisfiable, wide search — but the token is already tripped, so the
  // checker must unwind on the first expanded node.
  auto b = HistoryBuilder(3, 3);
  b.r("p", "x", 0).r("p", "y", 0).r("q", "y", 0).r("q", "z", 0)
      .r("r", "z", 0).r("r", "x", 0);
  auto h = std::move(b).build();
  std::atomic<bool> cancel{true};
  const checker::SearchControl control(&cancel);
  const auto view =
      checker::find_legal_view(h, checker::all_ops(h), rel::Relation(h.size()),
                               rel::DynBitset(h.size()), control);
  EXPECT_FALSE(view.has_value());
  const auto stats = checker::last_search_stats();
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

/// Engineered asymmetric instance: processor 0 owns an unsatisfiable view
/// problem with a huge, memo-bounded state space (kWriters unconstrained
/// writes plus a read of a value nobody writes); processor 1's problem is
/// unsatisfiable in one node.  Serially, p0 is fully refuted before p1 is
/// even attempted.  In parallel, p1 fails instantly and the stop token
/// aborts p0 mid-search.
constexpr Value kWriters = 15;

history::SystemHistory asymmetric_history() {
  auto b = HistoryBuilder(2, 2);
  for (Value v = 1; v <= kWriters; ++v) b.w("p", "x", v);
  b.r("p", "y", 99);   // never written: p0's problem is unsatisfiable
  b.r("q", "y", 123);  // never written: p1 fails on its first node
  return std::move(b).build_unchecked();
}

ViewProblemFn asymmetric_problem(const history::SystemHistory& h,
                                 const rel::Relation& unconstrained) {
  return [&h, &unconstrained](ProcId p) {
    rel::DynBitset universe(h.size());
    for (OpIndex i : h.processor_ops(p)) universe.set(i);
    return ViewProblem{std::move(universe), unconstrained};
  };
}

TEST(ParallelSolve, SiblingFailureCancelsLargeSearch) {
  SerialAtExit guard;
  const auto h = asymmetric_history();
  const rel::Relation unconstrained(h.size());
  const auto problem = asymmetric_problem(h, unconstrained);

  ThreadPool::set_global_jobs(1);
  checker::reset_aggregate_search_stats();
  Verdict serial;
  EXPECT_FALSE(solve_per_processor(h, problem, serial));
  const auto serial_stats = checker::aggregate_search_stats();
  // Serial order refutes p0 exhaustively (hundreds of thousands of nodes)
  // before reaching the one-node refutation of p1.
  ASSERT_GT(serial_stats.nodes, 100000u);
  EXPECT_EQ(serial_stats.cancelled, 0u);

  ThreadPool::set_global_jobs(4);
  checker::reset_aggregate_search_stats();
  Verdict parallel;
  EXPECT_FALSE(solve_per_processor(h, problem, parallel));
  const auto parallel_stats = checker::aggregate_search_stats();
  // p1's instant failure must have cancelled p0 long before a full
  // refutation.  The bound is deliberately loose (half the serial work);
  // in practice cancellation lands within milliseconds of the fan-out.
  EXPECT_LT(parallel_stats.nodes, serial_stats.nodes / 2)
      << "stop token did not abort the sibling search";
}

TEST(ParallelSolve, VerdictsAndWitnessesMatchSerial) {
  SerialAtExit guard;
  const std::vector<const char*> model_names = {"SC", "TSO", "PC", "Causal",
                                                "PRAM", "Local"};
  std::vector<history::SystemHistory> histories;
  histories.push_back(HistoryBuilder(2, 2)
                          .w("p", "x", 1)
                          .r("p", "y", 0)
                          .w("q", "y", 1)
                          .r("q", "x", 0)
                          .build());  // fig.1 store buffering
  histories.push_back(HistoryBuilder(2, 2)
                          .w("p", "x", 1)
                          .w("p", "y", 1)
                          .r("q", "y", 1)
                          .r("q", "x", 1)
                          .build());  // message passing, SC outcome
  histories.push_back(HistoryBuilder(3, 2)
                          .w("p", "x", 1)
                          .r("q", "x", 1)
                          .r("q", "y", 0)
                          .w("r", "y", 1)
                          .r("r", "x", 0)
                          .build());  // write-to-read causality chain

  for (const char* name : model_names) {
    const auto model = models::make_model(name);
    for (std::size_t hi = 0; hi < histories.size(); ++hi) {
      const auto& h = histories[hi];
      ThreadPool::set_global_jobs(1);
      const auto serial = model->check(h);
      ThreadPool::set_global_jobs(4);
      const auto parallel = model->check(h);
      EXPECT_EQ(serial.allowed, parallel.allowed)
          << name << " diverges on history " << hi;
      if (parallel.allowed) {
        const auto err = model->verify_witness(h, parallel);
        EXPECT_FALSE(err.has_value())
            << name << " history " << hi << ": " << *err;
      }
    }
  }
}

}  // namespace
}  // namespace ssm::models
