// Bakery demo: the paper's §5 experiment, end to end.
//
// Runs Lamport's Bakery algorithm on the RC_sc and RC_pc machines under an
// adversarial schedule that delays update propagation, shows the mutual
// exclusion outcome, and machine-checks the violating trace against the
// declarative RC_sc / RC_pc models.
//
//   $ ./bakery_demo [n]      # n processes (default 2)
#include <cstdio>
#include <cstdlib>

#include "bakery/driver.hpp"
#include "history/print.hpp"
#include "models/models.hpp"
#include "simulate/rc_memory.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  if (n < 2 || n > 6) {
    std::fprintf(stderr, "n must be in [2, 6]\n");
    return 1;
  }

  sim::SchedulerOptions adversarial;
  adversarial.policy = sim::Policy::DelayDelivery;
  adversarial.max_spin = 200;

  const bakery::MachineFactory rc_sc = [](std::size_t p, std::size_t l) {
    return sim::make_rc_sc_machine(p, l);
  };
  const bakery::MachineFactory rc_pc = [](std::size_t p, std::size_t l) {
    return sim::make_rc_pc_machine(p, l);
  };

  std::printf("=== Bakery on RC_sc (labeled ops sequentially consistent)\n");
  const auto safe = bakery::run_bakery(
      rc_sc, n, bakery::BakeryOptions{1, true}, adversarial);
  std::printf("critical-section entries: %llu, violations: %llu\n\n",
              static_cast<unsigned long long>(safe.cs_entries),
              static_cast<unsigned long long>(safe.violations));

  std::printf("=== Bakery on RC_pc (labeled ops processor consistent)\n");
  const auto broken = bakery::run_bakery(
      rc_pc, n, bakery::BakeryOptions{1, false}, adversarial);
  std::printf("critical-section entries: %llu, violations: %llu\n\n",
              static_cast<unsigned long long>(broken.cs_entries),
              static_cast<unsigned long long>(broken.violations));

  if (broken.violations == 0) {
    std::printf("no violation reproduced (unexpected)\n");
    return 2;
  }

  std::printf("violating trace:\n%s\n",
              history::format_history(broken.trace).c_str());

  const auto rcsc_verdict = models::make_rc_sc()->check(broken.trace);
  const auto rcpc_verdict = models::make_rc_pc()->check(broken.trace);
  std::printf("declarative RC_sc admits it? %s\n",
              rcsc_verdict.allowed ? "yes (BUG)" : "no — as the paper proves");
  std::printf("declarative RC_pc admits it? %s\n",
              rcpc_verdict.allowed ? "yes — as the paper proves"
                                   : "no (BUG)");
  const bool as_expected = !rcsc_verdict.allowed && rcpc_verdict.allowed;
  std::printf(
      "\nConclusion: the Bakery algorithm distinguishes RC_sc from RC_pc\n"
      "(paper §5): %s\n",
      as_expected ? "REPRODUCED" : "NOT reproduced");
  return as_expected ? 0 : 2;
}
