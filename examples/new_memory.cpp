// Defining a NEW memory with the framework (paper §7: "the model also
// helps us in identifying new memories").
//
// A memory is three choices: which operations enter each view (δp), what
// mutual consistency ties views together, and which order each view must
// respect.  This example assembles a memory the paper never names —
// "FIFO-coherent memory": PRAM's program-order pipelines PLUS coherence
// but evaluated per-processor, i.e. Goodman PC — directly from library
// primitives, then compares it against the built-in models and locates it
// in the lattice empirically.
//
//   $ ./new_memory
#include <cstdio>

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "history/builder.hpp"
#include "history/print.hpp"
#include "lattice/enumerate.hpp"
#include "models/models.hpp"
#include "order/coherence.hpp"
#include "order/orders.hpp"

namespace {

using namespace ssm;

/// The three parameters, hand-assembled:
///   1. set of operations: own ops + writes of others (own_plus_writes);
///   2. mutual consistency: a per-location write order shared by all views
///      (for_each_coherence_order supplies the candidates);
///   3. ordering: full program order.
bool my_memory_admits(const history::SystemHistory& h) {
  const auto po = order::program_order(h);
  bool admitted = false;
  order::for_each_coherence_order(
      h, po, [&](const order::CoherenceOrder& coh) {
        const rel::Relation constraints = po | coh.as_relation();
        for (ProcId p = 0; p < h.num_processors(); ++p) {
          if (!checker::find_legal_view(h, checker::own_plus_writes(h, p),
                                        constraints)) {
            return true;  // this coherence order fails; try the next
          }
        }
        admitted = true;
        return false;
      });
  return admitted;
}

}  // namespace

int main() {
  // Sanity: the assembled memory must agree with the built-in Goodman PC
  // on the paper's figures.
  const auto pcg = models::make_goodman();
  struct Probe {
    const char* name;
    history::SystemHistory h;
  };
  std::vector<Probe> probes;
  probes.push_back({"fig1 (store buffering)",
                    history::HistoryBuilder(2, 2)
                        .w("p", "x", 1)
                        .r("p", "y", 0)
                        .w("q", "y", 1)
                        .r("q", "x", 0)
                        .build()});
  probes.push_back({"fig3 (same-location divergence)",
                    history::HistoryBuilder(2, 1)
                        .w("p", "x", 1)
                        .r("p", "x", 1)
                        .r("p", "x", 2)
                        .w("q", "x", 2)
                        .r("q", "x", 2)
                        .r("q", "x", 1)
                        .build()});
  probes.push_back({"mp (message passing)",
                    history::HistoryBuilder(2, 2)
                        .w("p", "x", 1)
                        .w("p", "y", 1)
                        .r("q", "y", 1)
                        .r("q", "x", 0)
                        .build()});

  std::printf("hand-assembled memory (po + coherence) vs built-in PCg:\n");
  for (const auto& probe : probes) {
    const bool mine = my_memory_admits(probe.h);
    const bool theirs = pcg->check(probe.h).allowed;
    std::printf("  %-32s mine=%-3s PCg=%-3s %s\n", probe.name,
                mine ? "yes" : "no", theirs ? "yes" : "no",
                mine == theirs ? "agree" : "DISAGREE");
  }

  // Locate the new memory in the lattice: classify an exhaustive small
  // universe against SC / the new memory / PRAM.
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::uint64_t total = 0, mine_admits = 0, sc_admits = 0, pram_admits = 0;
  const auto sc = models::make_sc();
  const auto pram = models::make_pram();
  std::uint64_t mine_not_sc = 0, pram_not_mine = 0, sc_not_mine = 0;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    ++total;
    const bool m = my_memory_admits(h);
    const bool s = sc->check(h).allowed;
    const bool w = pram->check(h).allowed;
    mine_admits += m;
    sc_admits += s;
    pram_admits += w;
    mine_not_sc += (m && !s);
    sc_not_mine += (s && !m);
    pram_not_mine += (w && !m);
    return true;
  });
  std::printf(
      "\nlattice position over %llu exhaustively enumerated histories:\n"
      "  SC admits %llu, the new memory %llu, PRAM %llu\n"
      "  |new \\ SC| = %llu, |SC \\ new| = %llu  -> SC %s new memory\n"
      "  |PRAM \\ new| = %llu                   -> new memory %s PRAM\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(sc_admits),
      static_cast<unsigned long long>(mine_admits),
      static_cast<unsigned long long>(pram_admits),
      static_cast<unsigned long long>(mine_not_sc),
      static_cast<unsigned long long>(sc_not_mine),
      mine_not_sc > 0 && sc_not_mine == 0 ? "is strictly stronger than"
                                          : "is NOT stronger than",
      static_cast<unsigned long long>(pram_not_mine),
      pram_not_mine > 0 ? "is strictly stronger than"
                        : "is NOT stronger than");
  return 0;
}
