// Spinlock: why hardware synchronization primitives exist.
//
// The paper's framework explains it (§3.4 footnote: read-modify-write
// operations are "included in all processor views"): because every view
// contains the rmw and its read part must be legal everywhere, test-and-
// set provides mutual exclusion even on memories as weak as PRAM — where
// flag-based locks fail.  This example races two lock implementations on
// every machine under an adversarial schedule:
//
//   * naive flag lock: spin until flag==0, then write flag=1 (two
//     separate operations — the classic broken lock);
//   * test-and-set lock: atomically swap 1 into the flag, retry on 1.
//
//   $ ./spinlock [rounds]
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "bakery/mutex_monitor.hpp"
#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

constexpr LocId kLock = 0;
constexpr LocId kData = 1;

sim::Program flag_lock_process(std::uint32_t id, std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    while (true) {
      const Value lock = co_await sim::read(kLock);
      if (lock == 0) break;
    }
    co_await sim::write(kLock, 1);  // NOT atomic with the read: broken
    co_await sim::enter_cs();
    co_await sim::write(kData, static_cast<Value>(id) + 1);
    co_await sim::exit_cs();
    co_await sim::write(kLock, 0);
  }
}

sim::Program tas_lock_process(std::uint32_t id, std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    while (true) {
      const Value old = co_await sim::rmw(kLock, 1);
      if (old == 0) break;  // acquired
    }
    co_await sim::enter_cs();
    co_await sim::write(kData, static_cast<Value>(id) + 1);
    co_await sim::exit_cs();
    co_await sim::rmw(kLock, 0);  // atomic release (drains in-flight state)
  }
}

struct MachineRow {
  const char* name;
  std::function<std::unique_ptr<sim::Machine>(std::size_t, std::size_t)>
      factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"coherent",
       [](std::size_t p, std::size_t l) {
         return sim::make_coherent_machine(p, l);
       }},
      {"causal",
       [](std::size_t p, std::size_t l) {
         return sim::make_causal_machine(p, l);
       }},
      {"pram",
       [](std::size_t p, std::size_t l) {
         return sim::make_pram_machine(p, l);
       }},
      {"rc-pc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
  };
}

std::uint64_t violations(const MachineRow& row, bool tas,
                         std::uint64_t rounds) {
  std::uint64_t total = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    auto machine = row.factory(2, 2);
    sim::SchedulerOptions opt;
    opt.policy = sim::Policy::DelayDelivery;
    opt.max_spin = 16;
    opt.seed = 1 + r;
    opt.max_steps = 100'000;
    sim::Scheduler sched(*machine, opt);
    bakery::MutexMonitor monitor(2);
    sched.set_cs_observer(
        [&](ProcId p, bool entering) { monitor.on_cs_event(p, entering); });
    for (std::uint32_t id = 0; id < 2; ++id) {
      sched.add_program(tas ? tas_lock_process(id, 2)
                            : flag_lock_process(id, 2));
    }
    (void)sched.run();
    total += monitor.violations();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t rounds =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 200;
  std::printf("mutual-exclusion violations over %llu adversarial runs\n\n",
              static_cast<unsigned long long>(rounds));
  std::printf("%-10s %14s %16s\n", "machine", "flag lock", "test-and-set");
  for (const auto& row : machines()) {
    const auto broken = violations(row, /*tas=*/false, rounds);
    const auto atomic = violations(row, /*tas=*/true, rounds);
    std::printf("%-10s %14llu %16llu\n", row.name,
                static_cast<unsigned long long>(broken),
                static_cast<unsigned long long>(atomic));
  }
  std::printf(
      "\nThe flag lock's read and write are separate operations, so every\n"
      "machine (even SC!) interleaves two processes past the gate.  The\n"
      "test-and-set column is zero everywhere: an rmw joins every\n"
      "processor's view atomically — the framework's explanation for why\n"
      "synchronization primitives, not ordinary reads and writes, are the\n"
      "portable path to mutual exclusion on weak memories.\n");
  return 0;
}
