// Quickstart: build a history with HistoryBuilder, ask every memory model
// whether it admits it, and print the witness views (the executable
// version of the paper's Figure 1 discussion).
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "checker/verdict.hpp"
#include "history/builder.hpp"
#include "history/print.hpp"
#include "models/registry.hpp"

int main() {
  using namespace ssm;

  // Paper Figure 1: both processors write, then read the other's location
  // and see the initial value — impossible under SC, fine under TSO.
  auto h = history::HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();

  std::printf("history (paper Figure 1):\n%s\n",
              history::format_history(h).c_str());

  for (const auto& model : models::all_models()) {
    const auto verdict = model->check(h);
    std::printf("%-10s %s", std::string(model->name()).c_str(),
                checker::format_verdict(h, verdict).c_str());
  }

  std::printf(
      "\nReading the output: SC forbids this history (no single legal\n"
      "interleaving exists), while TSO and everything weaker admit it;\n"
      "each admitted verdict shows per-processor witness views exactly\n"
      "like the S_{p+w} sequences in the paper.\n");
  return 0;
}
