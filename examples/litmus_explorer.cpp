// Litmus explorer: classify litmus tests against every model.
//
//   $ ./litmus_explorer                 # run the built-in suite
//   $ ./litmus_explorer my_tests.litmus # run tests from a DSL file
//   $ ./litmus_explorer --show fig1-sb  # print witnesses for one test
//
// The DSL (see src/litmus/parser.hpp):
//   name: SB
//   p: w(x)1 r(y)0
//   q: w(y)1 r(x)0
//   expect: SC=no TSO=yes
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "checker/verdict.hpp"
#include "history/print.hpp"
#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace {

int show_test(const ssm::litmus::LitmusTest& t) {
  std::printf("%s", ssm::litmus::to_dsl(t).c_str());
  std::printf("\n");
  const auto& h = t.hist;
  for (const auto& model : ssm::models::all_models()) {
    const auto verdict = model->check(h);
    std::printf("%-10s %s", std::string(model->name()).c_str(),
                ssm::checker::format_verdict(h, verdict).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssm;
  try {
    std::vector<litmus::LitmusTest> suite;
    if (argc == 3 && std::string(argv[1]) == "--show") {
      return show_test(litmus::find_test(argv[2]));
    }
    if (argc == 2) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      suite = litmus::parse_suite(text.str());
    } else {
      suite = litmus::builtin_suite();
    }

    const auto models = models::all_models();
    const auto outcomes = litmus::run_suite(suite, models);
    std::printf("%s", litmus::format_matrix(outcomes).c_str());

    int mismatches = 0;
    for (const auto& o : outcomes) {
      for (const auto& m : o.per_model) {
        if (!m.matches()) {
          ++mismatches;
          std::printf("MISMATCH: %s under %s: got %s, expected %s\n",
                      o.test.c_str(), m.model.c_str(),
                      m.allowed ? "allowed" : "forbidden",
                      *m.expected ? "allowed" : "forbidden");
        }
      }
    }
    std::printf("\n%zu tests, %d expectation mismatches\n", outcomes.size(),
                mismatches);
    return mismatches == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
