// Lattice map: regenerate the paper's Figure 5 empirically.
//
// Exhaustively enumerates every canonical small history, classifies each
// under all models, and prints the resulting containment relations plus a
// separation witness for each strict/incomparable pair.
//
//   $ ./lattice_map            # default 2 procs x 2 ops, 2 locs
//   $ ./lattice_map 2 3 2      # procs ops locs (exhaustive; grows fast)
#include <cstdio>
#include <cstdlib>

#include "lattice/inclusion.hpp"
#include "models/registry.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  lattice::EnumerationSpec spec;
  if (argc == 4) {
    spec.procs = static_cast<std::uint32_t>(std::atoi(argv[1]));
    spec.ops_per_proc = static_cast<std::uint32_t>(std::atoi(argv[2]));
    spec.locs = static_cast<std::uint32_t>(std::atoi(argv[3]));
  }
  std::printf("enumerating histories: %u procs x %u ops, %u locations\n\n",
              spec.procs, spec.ops_per_proc, spec.locs);

  const auto models = models::paper_models();
  const auto report = lattice::compute_inclusions(spec, models);
  std::printf("%s\n", report.format().c_str());

  std::printf("separation witnesses:\n");
  for (std::size_t i = 0; i < report.model_names.size(); ++i) {
    for (std::size_t j = 0; j < report.model_names.size(); ++j) {
      if (i == j || !report.witness[i][j].has_value()) continue;
      std::printf("-- in %s but not %s:\n%s",
                  report.model_names[i].c_str(),
                  report.model_names[j].c_str(),
                  report.witness[i][j]->c_str());
    }
  }
  return 0;
}
