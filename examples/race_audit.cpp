// Race audit: the program-discipline side of the paper, end to end.
//
// For every test in the built-in suite (or a user-supplied litmus file),
// report: data races, RC_sc admission, SC admission — and verify the DRF
// guarantee on the fly: any RC_sc-admitted, race-free history must be SC.
//
//   $ ./race_audit [file.litmus]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "litmus/parser.hpp"
#include "litmus/suite.hpp"
#include "models/models.hpp"
#include "race/race.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  try {
    std::vector<litmus::LitmusTest> suite;
    if (argc > 1) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      suite = litmus::parse_suite(text.str());
    } else {
      suite = litmus::builtin_suite();
    }

    const auto rcsc = models::make_rc_sc();
    const auto sc = models::make_sc();
    std::printf("%-20s %6s %6s %6s  %s\n", "test", "races", "RCsc", "SC",
                "DRF guarantee");
    int violations = 0;
    for (const auto& t : suite) {
      const auto races = race::find_races(t.hist);
      const bool rcsc_ok = rcsc->check(t.hist).allowed;
      const bool sc_ok = sc->check(t.hist).allowed;
      const char* verdict = "-";
      if (races.empty() && rcsc_ok) {
        verdict = sc_ok ? "holds" : "VIOLATED";
        if (!sc_ok) ++violations;
      }
      std::printf("%-20s %6zu %6s %6s  %s\n", t.name.c_str(), races.size(),
                  rcsc_ok ? "yes" : "no", sc_ok ? "yes" : "no", verdict);
    }
    std::printf(
        "\nDRF guarantee: race-free histories admitted by RC_sc are SC.\n"
        "violations: %d\n",
        violations);
    return violations == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
