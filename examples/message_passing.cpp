// Publication (message passing): the application-level pattern behind the
// paper's release consistency — a producer writes data, then raises a
// flag; a consumer spins on the flag, then reads the data.
//
// This example runs the pattern on every machine, with ordinary vs
// labeled (release/acquire) flag accesses, under an adversarial schedule
// that delays propagation, and counts stale receptions.  The paper's
// story in one table: on SC/TSO the handshake works unlabeled; on the RC
// machines it works only when the flag operations are labeled.
//
//   $ ./message_passing [rounds]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

constexpr LocId kData = 0;
constexpr LocId kFlag = 1;

sim::Program producer(Value payload, OpLabel flag_label) {
  co_await sim::write(kData, payload, OpLabel::Ordinary);
  co_await sim::write(kFlag, 1, flag_label);
}

sim::Program consumer(Value expected, OpLabel flag_label, bool* stale,
                      bool* done) {
  while (true) {
    const Value flag = co_await sim::read(kFlag, flag_label);
    if (flag == 1) break;
  }
  const Value data = co_await sim::read(kData, OpLabel::Ordinary);
  *stale = (data != expected);
  *done = true;
}

struct MachineRow {
  const char* name;
  std::function<std::unique_ptr<sim::Machine>(std::size_t, std::size_t)>
      factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"coherent",
       [](std::size_t p, std::size_t l) {
         return sim::make_coherent_machine(p, l);
       }},
      {"causal",
       [](std::size_t p, std::size_t l) {
         return sim::make_causal_machine(p, l);
       }},
      {"pram",
       [](std::size_t p, std::size_t l) {
         return sim::make_pram_machine(p, l);
       }},
      {"rc-sc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_sc_machine(p, l);
       }},
      {"rc-pc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
  };
}

std::uint64_t stale_count(const MachineRow& row, OpLabel flag_label,
                          std::uint64_t rounds) {
  std::uint64_t stale_total = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    auto machine = row.factory(2, 2);
    sim::SchedulerOptions opt;
    opt.policy = sim::Policy::Random;  // deliveries race in random order
    opt.internal_weight = 2;
    opt.seed = 100 + r;
    sim::Scheduler sched(*machine, opt);
    bool stale = false, done = false;
    const Value payload = static_cast<Value>(r % 5) + 1;
    sched.add_program(producer(payload, flag_label));
    sched.add_program(consumer(payload, flag_label, &stale, &done));
    const auto run = sched.run();
    if (run.livelock || !done) continue;
    stale_total += stale ? 1 : 0;
  }
  return stale_total;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t rounds =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 300;
  std::printf(
      "publication handshake under randomly-ordered delivery (%llu "
      "rounds):\nstale receptions (consumer saw the flag but not the "
      "data)\n\n",
      static_cast<unsigned long long>(rounds));
  std::printf("%-10s %18s %18s\n", "machine", "ordinary flag",
              "labeled rel/acq");
  for (const auto& row : machines()) {
    const auto plain = stale_count(row, OpLabel::Ordinary, rounds);
    const auto labeled = stale_count(row, OpLabel::Labeled, rounds);
    std::printf("%-10s %12llu/%-5llu %12llu/%-5llu\n", row.name,
                static_cast<unsigned long long>(plain),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(labeled),
                static_cast<unsigned long long>(rounds));
  }
  std::printf(
      "\nReading the table: FIFO machines (sc/tso/coherent/causal/pram)\n"
      "never deliver the flag before the data, labeled or not.  The RC\n"
      "machines propagate ordinary writes independently, so the ordinary-\n"
      "flag column shows stale receptions — which the release/acquire\n"
      "labeling eliminates (the release flushes, or travels FIFO with,\n"
      "the data it publishes).\n");
  return 0;
}
