// Checker scalability: decision time vs. history size per model, plus the
// parallel checking engine's fan-out workload.
//
// Not a paper artifact (the paper has no performance evaluation), but the
// standard systems question for a model checker: how does the view-search
// decision procedure scale with operations per processor, processor
// count, model strength — and with threads?
//
// Modes:
//   ./checker_scaling                          google-benchmark rows
//   ./checker_scaling --jobs N                 fan-out workload at N lanes
//   ./checker_scaling --jobs N --json out.json ... plus machine-readable
//                                              record (nodes/sec, wall
//                                              time, matrix checksum,
//                                              metrics snapshot) for the
//                                              BENCH_*.json trajectory
//   ... --max-nodes N / --timeout-ms N         per-cell search budget;
//                                              exhausted cells render "?"
//                                              (docs/OBSERVABILITY.md)
//
// The matrix checksum is deterministic across --jobs settings: verdicts
// and rendered output must be byte-identical however the pool interleaves
// the work (docs/PARALLELISM.md).  It is also unchanged by a budget that
// never trips — only an actually-exhausted cell alters the matrix.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "checker/legality.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "lattice/enumerate.hpp"
#include "litmus/runner.hpp"

namespace {

using namespace ssm;

history::SystemHistory random_h(std::uint32_t procs, std::uint32_t ops,
                                std::uint32_t locs, std::uint64_t seed) {
  lattice::EnumerationSpec spec;
  spec.procs = procs;
  spec.ops_per_proc = ops;
  spec.locs = locs;
  Rng rng(seed);
  return lattice::random_history(spec, rng);
}

void register_scaling(const char* model_name) {
  for (std::uint32_t ops : {2u, 4u, 6u, 8u}) {
    const std::string name = std::string("scaling/") + model_name +
                             "/2procs_x_" + std::to_string(ops) + "ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, ops](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 11;
          std::uint64_t allowed = 0, total = 0;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(2, ops, 2, seed++);
            state.ResumeTiming();
            const bool a = m->check(h).allowed;
            benchmark::DoNotOptimize(a);
            ++total;
            allowed += a ? 1 : 0;
          }
          state.counters["admit_rate"] =
              benchmark::Counter(static_cast<double>(allowed) /
                                 static_cast<double>(total == 0 ? 1 : total));
        });
  }
  for (std::uint32_t procs : {2u, 3u, 4u}) {
    const std::string name = std::string("scaling/") + model_name + "/" +
                             std::to_string(procs) + "procs_x_3ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, procs](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 23;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(procs, 3, 2, seed++);
            state.ResumeTiming();
            benchmark::DoNotOptimize(m->check(h).allowed);
          }
        });
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The multi-processor lattice workload: a fixed-seed suite of random
/// canonical histories classified against the paper's seven models.  Both
/// fan-out levels engage — (test × model) cells across the suite, and
/// per-processor view searches inside each check.
int run_fanout_workload(unsigned jobs, const char* json_path,
                        const checker::BudgetSpec& budget) {
  common::ThreadPool::set_global_jobs(jobs);
  constexpr std::uint32_t kProcs = 4;
  constexpr std::uint32_t kOps = 3;
  constexpr std::uint32_t kLocs = 2;
  constexpr std::uint32_t kHistories = 24;
  std::vector<litmus::LitmusTest> suite;
  suite.reserve(kHistories);
  for (std::uint32_t i = 0; i < kHistories; ++i) {
    litmus::LitmusTest t;
    t.name = "lattice_rand_" + std::to_string(i);
    t.origin = "random canonical history, seed " + std::to_string(1000 + i);
    t.hist = random_h(kProcs, kOps, kLocs, 1000 + i);
    suite.push_back(std::move(t));
  }
  const auto models = models::paper_models();

  checker::reset_aggregate_search_stats();
  common::metrics::Registry::global().reset();
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes =
      litmus::run_suite(suite, models, litmus::RunOptions{budget});
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto stats = checker::aggregate_search_stats();
  const std::string matrix = litmus::format_matrix(outcomes);
  const double nodes_per_sec =
      wall_s > 0 ? static_cast<double>(stats.nodes) / wall_s : 0.0;

  std::printf("%s\n", matrix.c_str());
  std::printf("fanout workload: %u histories (%u procs x %u ops) x %zu "
              "models, jobs=%u\n",
              kHistories, kProcs, kOps, models.size(), jobs);
  std::printf("wall=%.3fs nodes=%llu memo_hits=%llu memo_misses=%llu "
              "searches=%llu cancelled=%llu exhausted=%llu nodes/sec=%.3e "
              "matrix_fnv1a=%016llx\n",
              wall_s, static_cast<unsigned long long>(stats.nodes),
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(stats.memo_misses),
              static_cast<unsigned long long>(stats.searches),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.exhausted),
              nodes_per_sec,
              static_cast<unsigned long long>(fnv1a(matrix)));

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char buf[1536];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"benchmark\": \"checker_scaling_fanout\",\n"
        "  \"jobs\": %u,\n"
        "  \"histories\": %u,\n"
        "  \"procs\": %u,\n"
        "  \"ops_per_proc\": %u,\n"
        "  \"models\": %zu,\n"
        "  \"max_nodes\": %llu,\n"
        "  \"timeout_ms\": %llu,\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"nodes\": %llu,\n"
        "  \"memo_hits\": %llu,\n"
        "  \"memo_misses\": %llu,\n"
        "  \"searches\": %llu,\n"
        "  \"cancelled\": %llu,\n"
        "  \"exhausted\": %llu,\n"
        "  \"nodes_per_sec\": %.3f,\n"
        "  \"matrix_fnv1a\": \"%016llx\",\n"
        "  ",
        jobs, kHistories, kProcs, kOps, models.size(),
        static_cast<unsigned long long>(budget.max_nodes),
        static_cast<unsigned long long>(budget.timeout_ms), wall_s,
        static_cast<unsigned long long>(stats.nodes),
        static_cast<unsigned long long>(stats.memo_hits),
        static_cast<unsigned long long>(stats.memo_misses),
        static_cast<unsigned long long>(stats.searches),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.exhausted), nodes_per_sec,
        static_cast<unsigned long long>(fnv1a(matrix)));
    std::string snapshot;
    common::metrics::append_global_snapshot(snapshot);
    out << buf << snapshot << "\n}\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 0;
  const char* json_path = nullptr;
  checker::BudgetSpec budget;
  bool fanout = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
      fanout = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
      fanout = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      fanout = true;
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      budget.max_nodes = std::strtoull(argv[++i], nullptr, 10);
      fanout = true;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      budget.timeout_ms = std::strtoull(argv[++i], nullptr, 10);
      fanout = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  bench::print_banner(
      "Checker scaling: decision time vs. history size, model, and threads",
      "(library performance characterization; no paper counterpart)");

  if (fanout) {
    return run_fanout_workload(
        jobs == 0 ? common::ThreadPool::default_jobs() : jobs, json_path,
        budget);
  }

  for (const char* model :
       {"SC", "TSO", "PC", "PCg", "Causal", "PRAM", "Cache", "Local"}) {
    register_scaling(model);
  }
  return bench::run_benchmarks(argc, argv);
}
