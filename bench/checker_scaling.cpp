// Checker scalability: decision time vs. history size per model, plus the
// parallel checking engine's fan-out workload.
//
// Not a paper artifact (the paper has no performance evaluation), but the
// standard systems question for a model checker: how does the view-search
// decision procedure scale with operations per processor, processor
// count, model strength — and with threads?
//
// Modes:
//   ./checker_scaling                          google-benchmark rows
//   ./checker_scaling --jobs N                 fan-out workload at N lanes
//   ./checker_scaling --jobs N --json out.json ... plus machine-readable
//                                              record (nodes/sec, wall
//                                              time, per-run walls,
//                                              speedup_vs_jobs1, matrix
//                                              checksum, metrics snapshot)
//                                              for the BENCH_*.json
//                                              trajectory
//   ... --repeat N                             repeat the timed workload N
//                                              times; report every wall
//                                              time plus mean and sample
//                                              stddev (variance makes a
//                                              single-run speedup claim
//                                              falsifiable)
//   ... --enforce                              exit non-zero unless the
//                                              scaling contract holds: on
//                                              >=4 hardware threads with
//                                              jobs>=4, speedup_vs_jobs1
//                                              >= 1.5; on smaller hosts
//                                              (1-core CI) a determinism
//                                              sweep instead — prompt
//                                              cancellation off, node
//                                              count and matrix checksum
//                                              byte-identical across jobs
//                                              1/2/4 and repeats
//   ... --max-nodes N / --timeout-ms N         per-cell search budget;
//                                              exhausted cells render "?"
//                                              (docs/OBSERVABILITY.md)
//
// The matrix checksum is deterministic across --jobs settings: verdicts
// and rendered output must be byte-identical however the pool interleaves
// the work (docs/PARALLELISM.md).  It is also unchanged by a budget that
// never trips — only an actually-exhausted cell alters the matrix.
#include "bench_util.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "checker/legality.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "lattice/enumerate.hpp"
#include "litmus/runner.hpp"
#include "models/per_processor.hpp"

namespace {

using namespace ssm;

history::SystemHistory random_h(std::uint32_t procs, std::uint32_t ops,
                                std::uint32_t locs, std::uint64_t seed) {
  lattice::EnumerationSpec spec;
  spec.procs = procs;
  spec.ops_per_proc = ops;
  spec.locs = locs;
  Rng rng(seed);
  return lattice::random_history(spec, rng);
}

void register_scaling(const char* model_name) {
  for (std::uint32_t ops : {2u, 4u, 6u, 8u}) {
    const std::string name = std::string("scaling/") + model_name +
                             "/2procs_x_" + std::to_string(ops) + "ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, ops](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 11;
          std::uint64_t allowed = 0, total = 0;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(2, ops, 2, seed++);
            state.ResumeTiming();
            const bool a = m->check(h).allowed;
            benchmark::DoNotOptimize(a);
            ++total;
            allowed += a ? 1 : 0;
          }
          state.counters["admit_rate"] =
              benchmark::Counter(static_cast<double>(allowed) /
                                 static_cast<double>(total == 0 ? 1 : total));
        });
  }
  for (std::uint32_t procs : {2u, 3u, 4u}) {
    const std::string name = std::string("scaling/") + model_name + "/" +
                             std::to_string(procs) + "procs_x_3ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, procs](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 23;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(procs, 3, 2, seed++);
            state.ResumeTiming();
            benchmark::DoNotOptimize(m->check(h).allowed);
          }
        });
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The matrix checksum the fixed-seed workload must render under any jobs
/// setting (docs/PARALLELISM.md pins the same constant).
constexpr std::uint64_t kExpectedMatrixHash = 0x36fc4f3d7bac8dafULL;

std::vector<litmus::LitmusTest> build_suite() {
  constexpr std::uint32_t kProcs = 4;
  constexpr std::uint32_t kOps = 3;
  constexpr std::uint32_t kLocs = 2;
  constexpr std::uint32_t kHistories = 24;
  std::vector<litmus::LitmusTest> suite;
  suite.reserve(kHistories);
  for (std::uint32_t i = 0; i < kHistories; ++i) {
    litmus::LitmusTest t;
    t.name = "lattice_rand_" + std::to_string(i);
    t.origin = "random canonical history, seed " + std::to_string(1000 + i);
    t.hist = random_h(kProcs, kOps, kLocs, 1000 + i);
    suite.push_back(std::move(t));
  }
  return suite;
}

struct RunResult {
  double wall_s = 0.0;
  checker::SearchStats stats;
  std::uint64_t matrix_hash = 0;
  std::string matrix;
};

RunResult run_once(const std::vector<litmus::LitmusTest>& suite,
                   const std::vector<models::ModelPtr>& models,
                   const checker::BudgetSpec& budget) {
  checker::reset_aggregate_search_stats();
  common::metrics::Registry::global().reset();
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes =
      litmus::run_suite(suite, models, litmus::RunOptions{budget});
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.stats = checker::aggregate_search_stats();
  r.matrix = litmus::format_matrix(outcomes);
  r.matrix_hash = fnv1a(r.matrix);
  return r;
}

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = mean_of(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

/// The <4-core enforcement arm: speedup is meaningless without lanes to
/// run on, so the falsifiable claim becomes determinism.  With prompt
/// cancellation off every search runs to its natural end, making the node
/// count — not just the verdict matrix — byte-identical across jobs
/// settings and repeats.
int run_determinism_sweep(const std::vector<litmus::LitmusTest>& suite,
                          const std::vector<models::ModelPtr>& models,
                          const checker::BudgetSpec& budget) {
  models::set_prompt_cancellation(false);
  bool ok = true;
  std::uint64_t ref_nodes = 0, ref_hash = 0;
  bool have_ref = false;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    common::ThreadPool::set_global_jobs(jobs);
    for (int rep = 0; rep < 2; ++rep) {
      const RunResult r = run_once(suite, models, budget);
      std::printf("determinism jobs=%u rep=%d nodes=%llu searches=%llu "
                  "matrix_fnv1a=%016llx\n",
                  jobs, rep, static_cast<unsigned long long>(r.stats.nodes),
                  static_cast<unsigned long long>(r.stats.searches),
                  static_cast<unsigned long long>(r.matrix_hash));
      if (!have_ref) {
        ref_nodes = r.stats.nodes;
        ref_hash = r.matrix_hash;
        have_ref = true;
      } else if (r.stats.nodes != ref_nodes || r.matrix_hash != ref_hash) {
        std::fprintf(stderr,
                     "FAIL: jobs=%u rep=%d diverged from reference "
                     "(nodes %llu vs %llu, hash %016llx vs %016llx)\n",
                     jobs, rep, static_cast<unsigned long long>(r.stats.nodes),
                     static_cast<unsigned long long>(ref_nodes),
                     static_cast<unsigned long long>(r.matrix_hash),
                     static_cast<unsigned long long>(ref_hash));
        ok = false;
      }
    }
  }
  models::set_prompt_cancellation(true);
  if (ref_hash != kExpectedMatrixHash) {
    std::fprintf(stderr, "FAIL: matrix_fnv1a %016llx != expected %016llx\n",
                 static_cast<unsigned long long>(ref_hash),
                 static_cast<unsigned long long>(kExpectedMatrixHash));
    ok = false;
  }
  std::printf("determinism sweep: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 2;
}

/// The multi-processor lattice workload: a fixed-seed suite of random
/// canonical histories classified against the paper's seven models.  Both
/// fan-out levels engage — (test × model) cells across the suite, and
/// per-processor view searches inside each check.
int run_fanout_workload(unsigned jobs, unsigned repeat, bool enforce,
                        const char* json_path,
                        const checker::BudgetSpec& budget) {
  const auto suite = build_suite();
  const auto models = models::paper_models();
  if (repeat == 0) repeat = 1;

  common::ThreadPool::set_global_jobs(jobs);
  std::vector<double> walls;
  walls.reserve(repeat);
  RunResult last;
  for (unsigned rep = 0; rep < repeat; ++rep) {
    last = run_once(suite, models, budget);
    walls.push_back(last.wall_s);
    if (repeat > 1) {
      std::printf("run %u/%u: wall=%.3fs nodes=%llu\n", rep + 1, repeat,
                  last.wall_s,
                  static_cast<unsigned long long>(last.stats.nodes));
    }
  }
  const double wall_mean = mean_of(walls);
  const double wall_sd = stddev_of(walls);
  const auto& stats = last.stats;
  const double nodes_per_sec =
      wall_mean > 0 ? static_cast<double>(stats.nodes) / wall_mean : 0.0;

  // Reference run(s) at jobs=1 on the same suite: the denominator of the
  // machine-readable speedup claim.  Same repeat count so both sides of
  // the ratio carry the same variance.
  double speedup = 1.0;
  double jobs1_mean = wall_mean;
  if (jobs > 1) {
    common::ThreadPool::set_global_jobs(1);
    std::vector<double> ref_walls;
    ref_walls.reserve(repeat);
    for (unsigned rep = 0; rep < repeat; ++rep) {
      ref_walls.push_back(run_once(suite, models, budget).wall_s);
    }
    common::ThreadPool::set_global_jobs(jobs);
    jobs1_mean = mean_of(ref_walls);
    speedup = wall_mean > 0 ? jobs1_mean / wall_mean : 0.0;
  }

  std::printf("%s\n", last.matrix.c_str());
  std::printf("fanout workload: %zu histories x %zu models, jobs=%u "
              "repeat=%u\n",
              suite.size(), models.size(), jobs, repeat);
  std::printf("wall=%.3fs (stddev %.3fs over %u runs) nodes=%llu "
              "memo_hits=%llu memo_misses=%llu searches=%llu cancelled=%llu "
              "exhausted=%llu nodes/sec=%.3e speedup_vs_jobs1=%.2fx "
              "matrix_fnv1a=%016llx\n",
              wall_mean, wall_sd, repeat,
              static_cast<unsigned long long>(stats.nodes),
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(stats.memo_misses),
              static_cast<unsigned long long>(stats.searches),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.exhausted),
              nodes_per_sec, speedup,
              static_cast<unsigned long long>(last.matrix_hash));

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::string runs_json = "[";
    for (std::size_t i = 0; i < walls.size(); ++i) {
      char w[32];
      std::snprintf(w, sizeof w, "%s%.6f", i == 0 ? "" : ", ", walls[i]);
      runs_json += w;
    }
    runs_json += "]";
    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"benchmark\": \"checker_scaling_fanout\",\n"
        "  \"jobs\": %u,\n"
        "  \"repeat\": %u,\n"
        "  \"histories\": %zu,\n"
        "  \"models\": %zu,\n"
        "  \"max_nodes\": %llu,\n"
        "  \"timeout_ms\": %llu,\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"wall_stddev_seconds\": %.6f,\n"
        "  \"wall_runs\": %s,\n"
        "  \"jobs1_wall_seconds\": %.6f,\n"
        "  \"speedup_vs_jobs1\": %.3f,\n"
        "  \"nodes\": %llu,\n"
        "  \"memo_hits\": %llu,\n"
        "  \"memo_misses\": %llu,\n"
        "  \"searches\": %llu,\n"
        "  \"cancelled\": %llu,\n"
        "  \"exhausted\": %llu,\n"
        "  \"nodes_per_sec\": %.3f,\n"
        "  \"matrix_fnv1a\": \"%016llx\",\n"
        "  ",
        jobs, repeat, suite.size(), models.size(),
        static_cast<unsigned long long>(budget.max_nodes),
        static_cast<unsigned long long>(budget.timeout_ms), wall_mean,
        wall_sd, runs_json.c_str(), jobs1_mean, speedup,
        static_cast<unsigned long long>(stats.nodes),
        static_cast<unsigned long long>(stats.memo_hits),
        static_cast<unsigned long long>(stats.memo_misses),
        static_cast<unsigned long long>(stats.searches),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.exhausted), nodes_per_sec,
        static_cast<unsigned long long>(last.matrix_hash));
    std::string snapshot;
    common::metrics::append_global_snapshot(snapshot);
    out << buf << snapshot << "\n}\n";
  }

  if (enforce) {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores >= 4 && jobs >= 4) {
      if (speedup < 1.5) {
        std::fprintf(stderr,
                     "FAIL: speedup_vs_jobs1 %.2fx < 1.5x at jobs=%u on %u "
                     "hardware threads\n",
                     speedup, jobs, cores);
        return 2;
      }
      std::printf("enforce: speedup %.2fx >= 1.5x OK\n", speedup);
    } else {
      std::printf("enforce: %u hardware thread(s) — determinism sweep "
                  "instead of speedup\n", cores);
      return run_determinism_sweep(suite, models, budget);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 0;
  unsigned repeat = 1;
  bool enforce = false;
  const char* json_path = nullptr;
  checker::BudgetSpec budget;
  bool fanout = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
      fanout = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
      fanout = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<unsigned>(std::atoi(argv[++i]));
      fanout = true;
    } else if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
      fanout = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      fanout = true;
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      budget.max_nodes = std::strtoull(argv[++i], nullptr, 10);
      fanout = true;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      budget.timeout_ms = std::strtoull(argv[++i], nullptr, 10);
      fanout = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  bench::print_banner(
      "Checker scaling: decision time vs. history size, model, and threads",
      "(library performance characterization; no paper counterpart)");

  if (fanout) {
    return run_fanout_workload(
        jobs == 0 ? common::ThreadPool::default_jobs() : jobs, repeat,
        enforce, json_path, budget);
  }

  for (const char* model :
       {"SC", "TSO", "PC", "PCg", "Causal", "PRAM", "Cache", "Local"}) {
    register_scaling(model);
  }
  return bench::run_benchmarks(argc, argv);
}
