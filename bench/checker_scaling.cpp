// Checker scalability: decision time vs. history size per model.
//
// Not a paper artifact (the paper has no performance evaluation), but the
// standard systems question for a model checker: how does the view-search
// decision procedure scale with operations per processor, processor
// count, and model strength?  Reported as google-benchmark rows over
// random canonical histories.
#include "bench_util.hpp"

#include "checker/legality.hpp"
#include "lattice/enumerate.hpp"

namespace {

using namespace ssm;

history::SystemHistory random_h(std::uint32_t procs, std::uint32_t ops,
                                std::uint32_t locs, std::uint64_t seed) {
  lattice::EnumerationSpec spec;
  spec.procs = procs;
  spec.ops_per_proc = ops;
  spec.locs = locs;
  Rng rng(seed);
  return lattice::random_history(spec, rng);
}

void register_scaling(const char* model_name) {
  for (std::uint32_t ops : {2u, 4u, 6u, 8u}) {
    const std::string name = std::string("scaling/") + model_name +
                             "/2procs_x_" + std::to_string(ops) + "ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, ops](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 11;
          std::uint64_t allowed = 0, total = 0;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(2, ops, 2, seed++);
            state.ResumeTiming();
            const bool a = m->check(h).allowed;
            benchmark::DoNotOptimize(a);
            ++total;
            allowed += a ? 1 : 0;
          }
          state.counters["admit_rate"] =
              benchmark::Counter(static_cast<double>(allowed) /
                                 static_cast<double>(total == 0 ? 1 : total));
        });
  }
  for (std::uint32_t procs : {2u, 3u, 4u}) {
    const std::string name = std::string("scaling/") + model_name + "/" +
                             std::to_string(procs) + "procs_x_3ops";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [model_name, procs](benchmark::State& state) {
          const auto m = models::make_model(model_name);
          std::uint64_t seed = 23;
          for (auto _ : state) {
            state.PauseTiming();
            const auto h = random_h(procs, 3, 2, seed++);
            state.ResumeTiming();
            benchmark::DoNotOptimize(m->check(h).allowed);
          }
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Checker scaling: decision time vs. history size and model",
      "(library performance characterization; no paper counterpart)");

  for (const char* model :
       {"SC", "TSO", "PC", "PCg", "Causal", "PRAM", "Cache", "Local"}) {
    register_scaling(model);
  }
  return bench::run_benchmarks(argc, argv);
}
