// The DRF guarantee, measured: "programs that meet certain requirements
// (properly labeled or data-race-free) do not need to be aware of the
// weak consistency" (paper §1, citing [8] in §5).
//
// Over exhaustively enumerated universes we count, per history: races,
// RC_sc admission, SC admission.  The theorem's empirical form: the
// region {RC_sc-admitted ∧ data-race-free ∧ ¬SC} is EMPTY — weak
// behaviour hides entirely behind data races.  The complementary count
// (racy ∧ RC_sc ∧ ¬SC) measures how much weakness races expose.
#include "bench_util.hpp"

#include "lattice/enumerate.hpp"
#include "models/models.hpp"
#include "race/race.hpp"

namespace {

using namespace ssm;

void sweep(const char* title, const lattice::EnumerationSpec& spec) {
  const auto rcsc = models::make_rc_sc();
  const auto wo = models::make_weak_ordering();
  const auto sc = models::make_sc();
  std::uint64_t total = 0, race_free = 0;
  std::uint64_t rcsc_drf = 0, rcsc_drf_not_sc = 0;
  std::uint64_t wo_drf = 0, wo_drf_not_sc = 0;
  std::uint64_t racy_rcsc_not_sc = 0;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    ++total;
    const bool drf = race::is_data_race_free(h);
    if (drf) ++race_free;
    const bool sc_ok = sc->check(h).allowed;
    if (rcsc->check(h).allowed) {
      if (drf) {
        ++rcsc_drf;
        if (!sc_ok) ++rcsc_drf_not_sc;
      } else if (!sc_ok) {
        ++racy_rcsc_not_sc;
      }
    }
    if (drf && wo->check(h).allowed) {
      ++wo_drf;
      if (!sc_ok) ++wo_drf_not_sc;
    }
    return true;
  });
  std::printf("%s\n", title);
  std::printf("  histories: %llu (%llu data-race-free)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(race_free));
  std::printf("  RCsc ∧ DRF: %llu, of which NOT SC: %llu  -> %s\n",
              static_cast<unsigned long long>(rcsc_drf),
              static_cast<unsigned long long>(rcsc_drf_not_sc),
              rcsc_drf_not_sc == 0 ? "theorem HOLDS" : "VIOLATED");
  std::printf("  WO   ∧ DRF: %llu, of which NOT SC: %llu  -> %s\n",
              static_cast<unsigned long long>(wo_drf),
              static_cast<unsigned long long>(wo_drf_not_sc),
              wo_drf_not_sc == 0 ? "theorem HOLDS" : "VIOLATED");
  std::printf("  racy ∧ RCsc ∧ not-SC: %llu (weakness exposed by races)\n\n",
              static_cast<unsigned long long>(racy_rcsc_not_sc));
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "DRF guarantee: race-free histories see no weakness",
      "every RC_sc/WO-admitted data-race-free history is sequentially "
      "consistent (per-execution form of Gibbons-Merritt-Gharachorloo, "
      "the paper's ref [8])");

  {
    lattice::EnumerationSpec spec;
    spec.procs = 2;
    spec.ops_per_proc = 2;
    spec.locs = 2;
    sweep("universe: 2 procs x 2 ops, 2 ordinary locations", spec);
  }
  {
    lattice::EnumerationSpec spec;
    spec.procs = 2;
    spec.ops_per_proc = 2;
    spec.locs = 2;
    spec.sync_locs = 1;
    sweep("universe: 2 procs x 2 ops, 1 sync + 1 data location", spec);
  }
  {
    lattice::EnumerationSpec spec;
    spec.procs = 2;
    spec.ops_per_proc = 3;
    spec.locs = 2;
    spec.sync_locs = 1;
    sweep("universe: 2 procs x 3 ops, 1 sync + 1 data location", spec);
  }

  benchmark::RegisterBenchmark(
      "drf/race_detection", [](benchmark::State& state) {
        const auto& t = litmus::find_test("bakery2-rcpc");
        for (auto _ : state) {
          benchmark::DoNotOptimize(race::find_races(t.hist).size());
        }
      });
  return bench::run_benchmarks(argc, argv);
}
