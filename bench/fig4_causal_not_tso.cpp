// Figure 4 regeneration: the causal history
//
//     p: w(x)1 w(y)1
//     q: r(y)1 w(z)1 r(x)2
//     r: w(x)2 r(x)1 r(z)1 r(y)1
//
// "Figure 4 shows an execution that is allowed by causal but not by TSO"
// (paper §3.5).  It is also the Causal∖PC separation witness (coherence
// on x cannot be agreed), completing the paper's incomparability claim.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  bench::print_banner(
      "Figure 4: causal history that is not allowed by TSO",
      "allowed by causal memory and PRAM; forbidden by TSO and PC");
  const auto& t = litmus::find_test("fig4-causal");
  bench::print_test_verdicts(t,
                             {"SC", "TSO", "PC", "PCg", "Causal", "PRAM"});

  for (const char* model : {"SC", "TSO", "PC", "Causal", "PRAM"}) {
    bench::time_model_on_test("fig4-causal", model);
  }
  return bench::run_benchmarks(argc, argv);
}
