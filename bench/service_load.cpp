// service_load — load generator for the check service (docs/SERVICE.md).
//
// Spins up an in-process server on a private unix socket, builds the
// request workload from a .litmus corpus (one check request per test), and
// drives it with --conns concurrent client connections:
//
//   cold pass   empty cache: the first request per cell is solved;
//   warm pass   same server: every cell comes from the cache;
//   sustained   optional (--duration S): keeps replaying the warm
//               workload until the deadline — the steady-state numbers.
//
// Every connection drives the FULL workload (--iters repetitions), so
// --conns N means N genuinely concurrent request streams, and --pipeline W
// keeps up to W requests in flight per connection (NDJSON pipelining; the
// server answers strictly in order per connection, which this generator
// asserts by matching response ids against the send queue).
//
// Reports per-pass throughput and p50/p95/p99 latency, the warm/cold
// speedup, server thread count (threads alive after server start, BEFORE
// any client thread exists — the O(io-threads)-not-O(conns) acceptance
// check), peak RSS, and — the point of the exercise — whether every
// verdict payload (model, verdict, witness bytes, note; `source`/`meta`
// excluded) was byte-identical across all passes, checked by fnv1a
// digest.  Exit 2 on any divergence.
//
//   service_load [--corpus DIR] [--conns N] [--iters N] [--pipeline W]
//                [--duration S] [--rps R] [--workers N] [--json]
//                [--max-nodes N] [--timeout-ms N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace ssm;
using Clock = std::chrono::steady_clock;

struct LoadOptions {
  std::string corpus = "tests/litmus/corpus";
  unsigned conns = 4;
  unsigned iters = 1;
  unsigned pipeline = 1;   // max in-flight requests per connection
  double duration = 0.0;   // sustained-pass seconds; 0 = skip
  double rps = 0.0;        // 0 = unlimited
  unsigned workers = 0;     // 0 = server default
  unsigned io_threads = 0;  // 0 = server default
  bool json = false;
  checker::BudgetSpec budget;
};

struct WorkItem {
  std::string id;
  std::string frame;  // complete request line ('\n'-terminated)
};

struct PassStats {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  // Verdict-cache read-path accounting over this pass (deltas of the
  // process-wide counters): a warm pass should be all lock-free reads and
  // ZERO shard-lock acquisitions — the number this bench exists to watch.
  std::uint64_t cache_lockfree_reads = 0;
  std::uint64_t cache_shard_locks = 0;

  [[nodiscard]] double rps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// Snapshot of the verdict-cache counters, for per-pass deltas.  The
/// server runs in-process, so its instruments live in this process's
/// metrics registry.
struct CacheCounters {
  std::uint64_t lockfree_reads;
  std::uint64_t shard_locks;

  static CacheCounters now() {
    auto& reg = common::metrics::Registry::global();
    return {reg.counter("service.cache_lockfree_reads").value(),
            reg.counter("service.shard_lock_acquisitions").value()};
  }
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Reads one numeric field from /proc/self/status (Linux; returns 0 when
/// unavailable).  Used for "Threads:", "VmRSS:", "VmHWM:".
std::uint64_t proc_status_field(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const std::size_t klen = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, klen, key) == 0) {
      return std::strtoull(line.c_str() + klen, nullptr, 10);
    }
  }
  return 0;
}

/// Digest of one response's verdict payload: model, verdict, witness bytes
/// (via the embedded witness_fnv1a, which hashes the exact serializer
/// output), and note — everything that must not differ between a solved
/// and a cached answer.
std::uint64_t digest_response(const common::json::Value& doc) {
  std::string flat;
  for (const auto& r : doc.at("results").items()) {
    flat += r.at("model").as_string();
    flat += '|';
    flat += r.at("verdict").as_string();
    flat += '|';
    if (const auto* w = r.find("witness_fnv1a")) flat += w->as_string();
    flat += '|';
    if (const auto* n = r.find("note")) flat += n->as_string();
    flat += ';';
  }
  return service::fnv1a64(flat);
}

std::vector<WorkItem> build_workload(const LoadOptions& opts) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(opts.corpus)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<WorkItem> work;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    for (const auto& t : litmus::parse_suite(text.str())) {
      WorkItem item;
      item.id = t.name;
      item.frame = "{\"op\": \"check\", \"id\": ";
      common::json::append_quoted(item.frame, t.name);
      item.frame += ", \"program\": ";
      common::json::append_quoted(item.frame, litmus::emit(t));
      item.frame += "}\n";
      work.push_back(std::move(item));
    }
  }
  if (work.empty()) throw InvalidInput("no .litmus tests in " + opts.corpus);
  return work;
}

/// One pass: every connection drives the whole workload (`iters` reps, or
/// until `deadline` when one is set), keeping up to `pipeline` requests in
/// flight.  Response ids are matched against the per-connection send
/// queue — a reordered response aborts, because in-order responses per
/// connection are part of the protocol contract.  `digests` accumulates
/// id → digest (first writer wins, every later observation must agree or
/// `identical` drops to false).
PassStats run_pass(const std::string& socket_path,
                   const std::vector<WorkItem>& work, const LoadOptions& opts,
                   std::map<std::string, std::uint64_t>& digests,
                   bool& identical,
                   std::optional<Clock::time_point> deadline = {}) {
  std::mutex mu;  // digests + latencies
  std::vector<std::uint64_t> latencies;
  std::size_t total = 0;
  const double per_req_interval =
      opts.rps > 0.0 ? static_cast<double>(opts.conns) / opts.rps : 0.0;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opts.conns);
  for (unsigned c = 0; c < opts.conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = service::Client::connect_unix(socket_path);
      std::vector<std::uint64_t> local;
      struct Sent {
        const WorkItem* item;
        Clock::time_point at;
      };
      std::deque<Sent> inflight;
      auto next_send = Clock::now();
      std::size_t done = 0;

      const auto read_one = [&] {
        const Sent sent = inflight.front();
        inflight.pop_front();
        auto reply = client.read_frame();
        if (!reply) {
          std::fprintf(stderr, "service_load: server closed mid-pass\n");
          std::exit(1);
        }
        local.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - sent.at)
                .count()));
        const auto doc = common::json::parse(*reply);
        if (!doc.at("ok").as_bool()) {
          std::fprintf(stderr, "service_load: request %s failed: %s\n",
                       sent.item->id.c_str(), reply->c_str());
          std::exit(1);
        }
        if (doc.at("id").as_string() != sent.item->id) {
          std::fprintf(stderr,
                       "service_load: response out of order: sent %s got %s\n",
                       sent.item->id.c_str(),
                       doc.at("id").as_string().c_str());
          std::exit(1);
        }
        const std::uint64_t d = digest_response(doc);
        std::lock_guard<std::mutex> lock(mu);
        const auto [it, inserted] = digests.emplace(sent.item->id, d);
        if (!inserted && it->second != d) identical = false;
        ++done;
      };

      // iters repetitions of the workload — or keep looping until the
      // deadline in sustained mode (at least one full repetition).
      std::size_t sent_count = 0;
      for (unsigned rep = 0;; ++rep) {
        if (deadline) {
          if (rep > 0 && Clock::now() >= *deadline) break;
        } else if (rep >= opts.iters) {
          break;
        }
        for (const WorkItem& item : work) {
          while (inflight.size() >= opts.pipeline) read_one();
          if (per_req_interval > 0.0) {
            std::this_thread::sleep_until(next_send);
            next_send += std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(per_req_interval));
          }
          client.send_frame(item.frame);
          inflight.push_back(Sent{&item, Clock::now()});
          ++sent_count;
        }
      }
      while (!inflight.empty()) read_one();
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
      total += done;
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::sort(latencies.begin(), latencies.end());
  PassStats stats;
  stats.seconds = seconds;
  stats.requests = total;
  stats.p50_us = percentile(latencies, 0.50);
  stats.p95_us = percentile(latencies, 0.95);
  stats.p99_us = percentile(latencies, 0.99);
  return stats;
}

/// run_pass plus before/after verdict-cache counter deltas.
PassStats run_counted_pass(const std::string& socket_path,
                           const std::vector<WorkItem>& work,
                           const LoadOptions& opts,
                           std::map<std::string, std::uint64_t>& digests,
                           bool& identical,
                           std::optional<Clock::time_point> deadline = {}) {
  const CacheCounters before = CacheCounters::now();
  PassStats stats = run_pass(socket_path, work, opts, digests, identical,
                             deadline);
  const CacheCounters after = CacheCounters::now();
  stats.cache_lockfree_reads = after.lockfree_reads - before.lockfree_reads;
  stats.cache_shard_locks = after.shard_locks - before.shard_locks;
  return stats;
}

void print_pass(const char* name, const PassStats& s) {
  std::printf("  %-9s %7zu req in %8.3fs = %9.1f rps   p50 %llu us  "
              "p95 %llu us  p99 %llu us\n",
              name, s.requests, s.seconds, s.rps(),
              static_cast<unsigned long long>(s.p50_us),
              static_cast<unsigned long long>(s.p95_us),
              static_cast<unsigned long long>(s.p99_us));
  std::printf("  %-9s cache reads: %llu lock-free, %llu shard-lock "
              "acquisitions\n",
              "", static_cast<unsigned long long>(s.cache_lockfree_reads),
              static_cast<unsigned long long>(s.cache_shard_locks));
}

std::string pass_json(const PassStats& s) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "{\"requests\": %zu, \"seconds\": %.6f, \"rps\": %.1f, "
                "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu, "
                "\"cache_lockfree_reads\": %llu, "
                "\"cache_shard_lock_acquisitions\": %llu}",
                s.requests, s.seconds, s.rps(),
                static_cast<unsigned long long>(s.p50_us),
                static_cast<unsigned long long>(s.p95_us),
                static_cast<unsigned long long>(s.p99_us),
                static_cast<unsigned long long>(s.cache_lockfree_reads),
                static_cast<unsigned long long>(s.cache_shard_locks));
  return buf;
}

int run(const LoadOptions& opts) {
  const std::vector<WorkItem> work = build_workload(opts);

  char tmpl[] = "/tmp/ssm-load-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) throw InvalidInput("mkdtemp failed");
  const std::string socket_path = std::string(tmpl) + "/s";

  const std::uint64_t threads_before = proc_status_field("Threads:");
  service::ServerOptions sopts;
  sopts.unix_socket = socket_path;
  if (opts.workers != 0) sopts.workers = opts.workers;
  if (opts.io_threads != 0) sopts.io_threads = opts.io_threads;
  sopts.queue_capacity = std::max<std::size_t>(
      1024, static_cast<std::size_t>(opts.conns) * opts.pipeline * 2);
  sopts.service.default_budget = opts.budget;
  service::Server server(sopts);
  server.start();
  // Threads alive now, minus the main thread's baseline, are the server's
  // own — measured before any client thread exists, so this is the
  // O(io-threads)-not-O(conns) acceptance number.
  const std::uint64_t server_threads =
      proc_status_field("Threads:") - threads_before;

  std::map<std::string, std::uint64_t> digests;
  bool identical = true;
  const PassStats cold =
      run_counted_pass(socket_path, work, opts, digests, identical);
  const PassStats warm =
      run_counted_pass(socket_path, work, opts, digests, identical);
  PassStats sustained;
  if (opts.duration > 0.0) {
    sustained = run_counted_pass(
        socket_path, work, opts, digests, identical,
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(opts.duration)));
  }
  const std::uint64_t peak_threads = proc_status_field("Threads:");

  server.begin_drain();
  server.wait();
  std::filesystem::remove_all(tmpl);

  const std::uint64_t rss_kb = proc_status_field("VmRSS:");
  const std::uint64_t rss_peak_kb = proc_status_field("VmHWM:");
  const double speedup = cold.rps() > 0.0 ? warm.rps() / cold.rps() : 0.0;
  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const auto& [id, d] : digests) {
    combined ^= d;
    combined *= 0x100000001b3ULL;
  }

  if (opts.json) {
    std::printf(
        "{\n"
        "  \"benchmark\": \"service_load\",\n"
        "  \"corpus\": \"%s\",\n"
        "  \"conns\": %u,\n"
        "  \"pipeline\": %u,\n"
        "  \"programs\": %zu,\n"
        "  \"server_threads\": %llu,\n"
        "  \"peak_threads\": %llu,\n"
        "  \"rss_kb\": %llu,\n"
        "  \"rss_peak_kb\": %llu,\n"
        "  \"cold\": %s,\n"
        "  \"warm\": %s,\n",
        opts.corpus.c_str(), opts.conns, opts.pipeline, work.size(),
        static_cast<unsigned long long>(server_threads),
        static_cast<unsigned long long>(peak_threads),
        static_cast<unsigned long long>(rss_kb),
        static_cast<unsigned long long>(rss_peak_kb),
        pass_json(cold).c_str(), pass_json(warm).c_str());
    if (opts.duration > 0.0) {
      std::printf("  \"sustained\": %s,\n", pass_json(sustained).c_str());
    }
    std::printf(
        "  \"warm_over_cold\": %.2f,\n"
        "  \"verdicts_identical\": %s,\n"
        "  \"digest_fnv1a\": \"%s\"\n"
        "}\n",
        speedup, identical ? "true" : "false",
        service::hex16(combined).c_str());
  } else {
    std::printf(
        "service_load: %zu programs x %u conns x %u iters, pipeline %u\n",
        work.size(), opts.conns, opts.iters, opts.pipeline);
    std::printf("  server threads: %llu   peak threads: %llu   "
                "rss %llu kB (peak %llu kB)\n",
                static_cast<unsigned long long>(server_threads),
                static_cast<unsigned long long>(peak_threads),
                static_cast<unsigned long long>(rss_kb),
                static_cast<unsigned long long>(rss_peak_kb));
    print_pass("cold:", cold);
    print_pass("warm:", warm);
    if (opts.duration > 0.0) print_pass("sustained:", sustained);
    std::printf("  warm/cold: %.2fx   verdicts identical: %s   digest %s\n",
                speedup, identical ? "yes" : "NO",
                service::hex16(combined).c_str());
  }
  return identical ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "service_load: flag %s needs a value\n",
                     arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      opts.corpus = value();
    } else if (arg == "--conns") {
      opts.conns = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--iters") {
      opts.iters = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--pipeline") {
      opts.pipeline =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--duration") {
      opts.duration = std::strtod(value(), nullptr);
    } else if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--io-threads") {
      opts.io_threads =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--rps") {
      opts.rps = std::strtod(value(), nullptr);
    } else if (arg == "--max-nodes") {
      opts.budget.max_nodes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      opts.budget.timeout_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--json") {
      opts.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: service_load [--corpus DIR] [--conns N] "
                   "[--iters N] [--pipeline W] [--duration S] [--workers N] "
                   "[--io-threads N] [--rps R] [--max-nodes N] "
                   "[--timeout-ms N] [--json]\n");
      return 64;
    }
  }
  if (opts.conns == 0 || opts.iters == 0 || opts.pipeline == 0) {
    std::fprintf(stderr,
                 "service_load: --conns/--iters/--pipeline must be positive\n");
    return 64;
  }
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_load: %s\n", e.what());
    return 1;
  }
}
