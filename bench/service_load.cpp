// service_load — load generator for the check service (docs/SERVICE.md).
//
// Spins up an in-process server on a private unix socket, builds the
// request workload from a .litmus corpus (one check request per test), and
// drives it twice with --conns concurrent client connections:
//
//   cold pass   empty cache: every cell is solved;
//   warm pass   same server: every cell should come from the cache.
//
// Reports per-pass throughput and p50/p95/p99 latency, the warm/cold
// speedup, and — the point of the exercise — whether every verdict payload
// (model, verdict, witness bytes, note; `source`/`meta` excluded) was
// byte-identical between the passes, checked by fnv1a digest.  Exit 2 on
// any divergence.
//
//   service_load [--corpus DIR] [--conns N] [--iters N] [--rps R] [--json]
//                [--max-nodes N] [--timeout-ms N]
//
//   --iters N   workload repetitions per pass (default 1; raise for
//               longer runs)
//   --rps R     global request-rate cap, 0 = unlimited
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace ssm;
using Clock = std::chrono::steady_clock;

struct LoadOptions {
  std::string corpus = "tests/litmus/corpus";
  unsigned conns = 4;
  unsigned iters = 1;
  double rps = 0.0;  // 0 = unlimited
  bool json = false;
  checker::BudgetSpec budget;
};

struct WorkItem {
  std::string id;
  std::string frame;  // complete request line
};

struct PassStats {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;

  [[nodiscard]] double rps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Digest of one response's verdict payload: model, verdict, witness bytes
/// (via the embedded witness_fnv1a, which hashes the exact serializer
/// output), and note — everything that must not differ between a solved
/// and a cached answer.
std::uint64_t digest_response(const common::json::Value& doc) {
  std::string flat;
  for (const auto& r : doc.at("results").items()) {
    flat += r.at("model").as_string();
    flat += '|';
    flat += r.at("verdict").as_string();
    flat += '|';
    if (const auto* w = r.find("witness_fnv1a")) flat += w->as_string();
    flat += '|';
    if (const auto* n = r.find("note")) flat += n->as_string();
    flat += ';';
  }
  return service::fnv1a64(flat);
}

std::vector<WorkItem> build_workload(const LoadOptions& opts) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(opts.corpus)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<WorkItem> work;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    for (const auto& t : litmus::parse_suite(text.str())) {
      WorkItem item;
      item.id = t.name;
      item.frame = "{\"op\": \"check\", \"id\": ";
      common::json::append_quoted(item.frame, t.name);
      item.frame += ", \"program\": ";
      common::json::append_quoted(item.frame, litmus::emit(t));
      item.frame += '}';
      work.push_back(std::move(item));
    }
  }
  if (work.empty()) throw InvalidInput("no .litmus tests in " + opts.corpus);
  return work;
}

/// One pass: `conns` threads split the workload; every response's digest
/// is recorded under its request id.  Returns the latency/throughput
/// stats; `digests` accumulates id → digest (first writer wins, every
/// later observation must agree or `identical` drops to false).
PassStats run_pass(const std::string& socket_path,
                   const std::vector<WorkItem>& work, const LoadOptions& opts,
                   std::map<std::string, std::uint64_t>& digests,
                   bool& identical) {
  std::mutex mu;  // digests + latencies
  std::vector<std::uint64_t> latencies;
  const double per_req_interval =
      opts.rps > 0.0 ? static_cast<double>(opts.conns) / opts.rps : 0.0;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  std::size_t total = 0;
  for (unsigned c = 0; c < opts.conns; ++c) {
    // Round-robin split so every connection sees a mix of programs.
    std::vector<const WorkItem*> mine;
    for (unsigned rep = 0; rep < opts.iters; ++rep) {
      for (std::size_t i = c; i < work.size(); i += opts.conns) {
        mine.push_back(&work[i]);
      }
    }
    total += mine.size();
    threads.emplace_back([&, mine] {
      auto client = service::Client::connect_unix(socket_path);
      auto next_send = Clock::now();
      for (const WorkItem* item : mine) {
        if (per_req_interval > 0.0) {
          std::this_thread::sleep_until(next_send);
          next_send += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(per_req_interval));
        }
        const auto start = Clock::now();
        const std::string reply = client.call(item->frame);
        const auto us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        const auto doc = common::json::parse(reply);
        if (!doc.at("ok").as_bool()) {
          std::fprintf(stderr, "service_load: request %s failed: %s\n",
                       item->id.c_str(), reply.c_str());
          std::exit(1);
        }
        const std::uint64_t d = digest_response(doc);
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(us);
        const auto [it, inserted] = digests.emplace(item->id, d);
        if (!inserted && it->second != d) identical = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::sort(latencies.begin(), latencies.end());
  PassStats stats;
  stats.seconds = seconds;
  stats.requests = total;
  stats.p50_us = percentile(latencies, 0.50);
  stats.p95_us = percentile(latencies, 0.95);
  stats.p99_us = percentile(latencies, 0.99);
  return stats;
}

int run(const LoadOptions& opts) {
  const std::vector<WorkItem> work = build_workload(opts);

  char tmpl[] = "/tmp/ssm-load-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) throw InvalidInput("mkdtemp failed");
  const std::string socket_path = std::string(tmpl) + "/s";

  service::ServerOptions sopts;
  sopts.unix_socket = socket_path;
  sopts.workers = std::max(2u, opts.conns);
  sopts.queue_capacity = std::max<std::size_t>(1024, work.size() * opts.conns);
  sopts.service.default_budget = opts.budget;
  service::Server server(sopts);
  server.start();

  std::map<std::string, std::uint64_t> digests;
  bool identical = true;
  const PassStats cold = run_pass(socket_path, work, opts, digests, identical);
  const PassStats warm = run_pass(socket_path, work, opts, digests, identical);

  server.begin_drain();
  server.wait();
  std::filesystem::remove_all(tmpl);

  const double speedup = cold.rps() > 0.0 ? warm.rps() / cold.rps() : 0.0;
  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const auto& [id, d] : digests) {
    combined ^= d;
    combined *= 0x100000001b3ULL;
  }

  if (opts.json) {
    std::printf(
        "{\n"
        "  \"benchmark\": \"service_load\",\n"
        "  \"corpus\": \"%s\",\n"
        "  \"conns\": %u,\n"
        "  \"programs\": %zu,\n"
        "  \"cold\": {\"requests\": %zu, \"seconds\": %.6f, \"rps\": %.1f, "
        "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu},\n"
        "  \"warm\": {\"requests\": %zu, \"seconds\": %.6f, \"rps\": %.1f, "
        "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu},\n"
        "  \"warm_over_cold\": %.2f,\n"
        "  \"verdicts_identical\": %s,\n"
        "  \"digest_fnv1a\": \"%s\"\n"
        "}\n",
        opts.corpus.c_str(), opts.conns, work.size(), cold.requests,
        cold.seconds, cold.rps(),
        static_cast<unsigned long long>(cold.p50_us),
        static_cast<unsigned long long>(cold.p95_us),
        static_cast<unsigned long long>(cold.p99_us), warm.requests,
        warm.seconds, warm.rps(),
        static_cast<unsigned long long>(warm.p50_us),
        static_cast<unsigned long long>(warm.p95_us),
        static_cast<unsigned long long>(warm.p99_us), speedup,
        identical ? "true" : "false",
        service::hex16(combined).c_str());
  } else {
    std::printf("service_load: %zu programs x %u conns x %u iters\n",
                work.size(), opts.conns, opts.iters);
    std::printf("  cold: %6zu req in %8.3fs = %9.1f rps   p50 %llu us  "
                "p95 %llu us  p99 %llu us\n",
                cold.requests, cold.seconds, cold.rps(),
                static_cast<unsigned long long>(cold.p50_us),
                static_cast<unsigned long long>(cold.p95_us),
                static_cast<unsigned long long>(cold.p99_us));
    std::printf("  warm: %6zu req in %8.3fs = %9.1f rps   p50 %llu us  "
                "p95 %llu us  p99 %llu us\n",
                warm.requests, warm.seconds, warm.rps(),
                static_cast<unsigned long long>(warm.p50_us),
                static_cast<unsigned long long>(warm.p95_us),
                static_cast<unsigned long long>(warm.p99_us));
    std::printf("  warm/cold: %.2fx   verdicts identical: %s   digest %s\n",
                speedup, identical ? "yes" : "NO",
                service::hex16(combined).c_str());
  }
  return identical ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "service_load: flag %s needs a value\n",
                     arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      opts.corpus = value();
    } else if (arg == "--conns") {
      opts.conns = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--iters") {
      opts.iters = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--rps") {
      opts.rps = std::strtod(value(), nullptr);
    } else if (arg == "--max-nodes") {
      opts.budget.max_nodes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      opts.budget.timeout_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--json") {
      opts.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: service_load [--corpus DIR] [--conns N] "
                   "[--iters N] [--rps R] [--max-nodes N] [--timeout-ms N] "
                   "[--json]\n");
      return 64;
    }
  }
  if (opts.conns == 0 || opts.iters == 0) {
    std::fprintf(stderr, "service_load: --conns/--iters must be positive\n");
    return 64;
  }
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_load: %s\n", e.what());
    return 1;
  }
}
