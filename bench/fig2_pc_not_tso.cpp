// Figure 2 regeneration: the write-to-read-causality history
//
//     p: w(x)1
//     q: r(x)1 w(y)1
//     r: r(y)1 r(x)0
//
// "Figure 2 shows an execution that is allowed by PC ... However, it is
// not possible to create processor views that satisfy TSO requirements"
// (paper §3.3).  Also the paper's PC∖Causal separation witness.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  bench::print_banner(
      "Figure 2: PC execution history that is not TSO",
      "allowed by PC; forbidden by TSO; also forbidden by causal memory");
  const auto& t = litmus::find_test("fig2-wrc");
  bench::print_test_verdicts(t,
                             {"SC", "TSO", "PC", "PCg", "Causal", "PRAM"});

  for (const char* model : {"SC", "TSO", "PC", "PCg", "Causal", "PRAM"}) {
    bench::time_model_on_test("fig2-wrc", model);
  }
  return bench::run_benchmarks(argc, argv);
}
