// Machine-vs-model soundness sweep (paper §3.2 / §3.5 operational
// definitions against the declarative framework).
//
// For each (machine, model) pairing, run many random programs under random
// schedules, record the trace, and ask the declarative checker whether the
// trace is admitted.  Soundness (machine ⊆ model) predicts 100% admission
// on the diagonal pairing; the table also shows how often each machine's
// traces are admitted by *stronger* models — an empirical measure of how
// much weaker behaviour each machine actually exhibits.
#include "bench_util.hpp"

#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"
#include "simulate/workload.hpp"

namespace {

using namespace ssm;

using Factory =
    std::unique_ptr<sim::Machine> (*)(std::size_t, std::size_t);

struct MachineRow {
  const char* name;
  Factory factory;
};

const MachineRow kMachines[] = {
    {"sc", &sim::make_sc_machine},
    {"tso", &sim::make_tso_machine},
    {"coherent", &sim::make_coherent_machine},
    {"causal", &sim::make_causal_machine},
    {"pram", &sim::make_pram_machine},
};

const char* const kModels[] = {"SC",     "TSO",  "TSOfwd", "PC",
                               "PCg",    "Causal", "PRAM"};

history::SystemHistory one_trace(const MachineRow& row, std::uint64_t seed) {
  sim::WorkloadSpec spec;
  spec.procs = 2;
  spec.locs = 2;
  spec.ops_per_proc = 4;
  Rng rng(seed);
  const auto plan = sim::make_plan(spec, rng);
  auto machine = row.factory(spec.procs, spec.locs);
  sim::SchedulerOptions opt;
  opt.seed = seed;
  if (seed % 2 == 0) {
    // Half the runs maximally delay propagation, so the weak behaviours
    // the machines are capable of actually show up in the table.
    opt.policy = sim::Policy::DelayDelivery;
    opt.max_spin = 8;
  }
  sim::Scheduler sched(*machine, opt);
  for (const auto& p : plan) sched.add_program(sim::run_plan(p));
  return sched.run().trace;
}

void admission_table(std::uint64_t runs) {
  std::printf("admission rate (%% of %llu random traces admitted)\n",
              static_cast<unsigned long long>(runs));
  std::printf("%-10s", "machine");
  for (const char* m : kModels) std::printf("%8s", m);
  std::printf("\n");
  for (const auto& row : kMachines) {
    std::vector<std::uint64_t> admitted(std::size(kModels), 0);
    std::vector<models::ModelPtr> models;
    for (const char* m : kModels) models.push_back(models::make_model(m));
    for (std::uint64_t r = 0; r < runs; ++r) {
      const auto trace = one_trace(row, 1000 + r);
      for (std::size_t i = 0; i < models.size(); ++i) {
        if (models[i]->check(trace).allowed) ++admitted[i];
      }
    }
    std::printf("%-10s", row.name);
    for (std::size_t i = 0; i < std::size(kModels); ++i) {
      std::printf("%7.1f%%",
                  100.0 * static_cast<double>(admitted[i]) /
                      static_cast<double>(runs));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading the table: each machine's own declarative model (and\n"
      "everything weaker) must sit at 100%%; stronger models dip below\n"
      "100%% exactly when the machine exhibits behaviour they forbid.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Soundness: operational machines vs. declarative models",
      "every trace of the §3.2 TSO machine / §3.5 PRAM & causal machines "
      "is admitted by the corresponding declarative memory");

  admission_table(150);

  for (const auto& row : kMachines) {
    const std::string name = std::string("soundness/trace_gen/") + row.name;
    benchmark::RegisterBenchmark(
        name.c_str(), [&row](benchmark::State& state) {
          std::uint64_t seed = 1;
          for (auto _ : state) {
            benchmark::DoNotOptimize(one_trace(row, seed++));
          }
        });
  }
  benchmark::RegisterBenchmark(
      "soundness/check_trace/PC", [](benchmark::State& state) {
        const auto trace = one_trace(kMachines[1], 42);
        const auto m = models::make_pc();
        for (auto _ : state) {
          benchmark::DoNotOptimize(m->check(trace).allowed);
        }
      });
  return bench::run_benchmarks(argc, argv);
}
