// Figure 5 regeneration: the containment lattice of memories.
//
// The paper's Venn diagram claims (over the set of all histories):
//     SC ⊂ TSO,  TSO ⊂ PC,  TSO ⊂ Causal,  PC ⊂ PRAM,  Causal ⊂ PRAM,
//     PC and Causal incomparable,
// and §4 proves TSO ⊂ PC in detail.  We decide these relations *exactly*
// over an exhaustively enumerated universe of canonical small histories
// (plus a larger random sample as a sanity check), printing a separation
// witness for every strict pair.
#include "bench_util.hpp"
#include "lattice/classify.hpp"
#include "lattice/inclusion.hpp"

namespace {

void print_report(const char* title, const ssm::lattice::InclusionReport& r) {
  std::printf("--- %s\n%s\n", title, r.format().c_str());
}

void check_paper_claims(const ssm::lattice::InclusionReport& r) {
  auto index = [&](const char* name) {
    for (std::size_t i = 0; i < r.model_names.size(); ++i) {
      if (r.model_names[i] == name) return i;
    }
    return r.model_names.size();
  };
  struct Claim {
    const char* a;
    const char* b;
    const char* relation;  // "strict" or "incomparable"
  };
  const Claim claims[] = {
      {"SC", "TSO", "strict"},      {"TSO", "PC", "strict"},
      {"TSO", "Causal", "strict"},  {"PC", "PRAM", "strict"},
      {"Causal", "PRAM", "strict"}, {"PC", "Causal", "incomparable"},
  };
  std::printf("paper claims vs. enumerated universe:\n");
  for (const auto& c : claims) {
    const std::size_t i = index(c.a), j = index(c.b);
    bool holds = false;
    if (std::string(c.relation) == "strict") {
      holds = r.strictly_stronger(i, j);
    } else {
      holds = r.incomparable(i, j);
    }
    std::printf("  %s vs %s: expected %s -> %s\n", c.a, c.b, c.relation,
                holds ? "MATCH" : "MISMATCH");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssm;
  bench::print_banner("Figure 5: relationship between memories",
                      "SC < TSO < {PC, Causal} < PRAM; PC and Causal "
                      "incomparable (set containment of admitted histories)");

  const auto models = models::paper_models();
  lattice::EnumerationSpec small;
  small.procs = 2;
  small.ops_per_proc = 2;
  small.locs = 2;
  const auto exhaustive = lattice::compute_inclusions(small, models);
  print_report("exhaustive universe (2 procs x 2 ops, 2 locs)", exhaustive);
  check_paper_claims(exhaustive);

  // Venn regions: the admission-pattern histogram over the same universe
  // (each row is one region of the paper's Figure 5 diagram).
  {
    auto stats = lattice::make_stats(models::paper_models());
    const auto ms = models::paper_models();
    lattice::for_each_history(small, [&](const history::SystemHistory& h) {
      stats.add(lattice::classify(h, ms));
      return true;
    });
    std::printf("--- Venn regions (admission pattern -> histories)\n");
    std::printf("pattern order:");
    for (const auto& n : stats.model_names) std::printf(" %s", n.c_str());
    std::printf("\n");
    for (const auto& [pattern, count] : stats.patterns) {
      std::printf("  ");
      for (bool b : pattern) std::printf("%c", b ? 'Y' : '.');
      std::printf("  %llu\n", static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  lattice::EnumerationSpec one_loc;
  one_loc.procs = 2;
  one_loc.ops_per_proc = 3;
  one_loc.locs = 1;
  const auto coherence_universe =
      lattice::compute_inclusions(one_loc, models::paper_models());
  print_report("exhaustive universe (2 procs x 3 ops, 1 loc)",
               coherence_universe);
  std::printf(
      "note: over single-location histories several models collapse (TSO\n"
      "= SC: with one location ppo keeps every program-order pair, and\n"
      "the common write order makes all views agree), so Figure 5's\n"
      "strictness claims are *not expected* to separate here — only the\n"
      "coherence-sensitive split (Causal admits fig.3-style divergence,\n"
      "PC does not) shows up.  This is itself a consequence of the\n"
      "paper's definitions, and the separation needs >= 2 locations.\n\n");

  // Labeled universe: where the §5 separation lives.  Location x is a
  // synchronization variable; the RC/WO/HC family splits apart.
  {
    lattice::EnumerationSpec labeled;
    labeled.procs = 2;
    labeled.ops_per_proc = 2;
    labeled.locs = 2;
    labeled.sync_locs = 1;
    std::vector<ssm::models::ModelPtr> rc_family;
    rc_family.push_back(ssm::models::make_sc());
    rc_family.push_back(ssm::models::make_weak_ordering());
    rc_family.push_back(ssm::models::make_hybrid());
    rc_family.push_back(ssm::models::make_rc_sc());
    rc_family.push_back(ssm::models::make_rc_pc());
    rc_family.push_back(ssm::models::make_rc_goodman());
    const auto labeled_report =
        lattice::compute_inclusions(labeled, rc_family);
    print_report(
        "labeled universe (2 procs x 2 ops; x is a sync variable)",
        labeled_report);

    // With EVERY location synchronizing, the §5 split appears: the
    // labeled store-buffering shape is RCpc-admitted and RCsc-rejected.
    labeled.sync_locs = 2;
    const auto all_sync = lattice::compute_inclusions(labeled, rc_family);
    print_report("all-sync universe (2 procs x 2 ops; x and y sync)",
                 all_sync);
    auto idx = [&](const char* n) {
      for (std::size_t i = 0; i < all_sync.model_names.size(); ++i) {
        if (all_sync.model_names[i] == n) return i;
      }
      return all_sync.model_names.size();
    };
    std::printf("paper sec. 5 claim: RCsc strictly stronger than RCpc on "
                "sync-only histories -> %s\n\n",
                all_sync.strictly_stronger(idx("RCsc"), idx("RCpc"))
                    ? "MATCH"
                    : "MISMATCH");
  }

  lattice::EnumerationSpec sampled;
  sampled.procs = 3;
  sampled.ops_per_proc = 3;
  sampled.locs = 2;
  const auto sample = lattice::sample_inclusions(
      sampled, models::paper_models(), 2000, 20260705);
  print_report("random sample (3 procs x 3 ops, 2 locs; 2000 histories)",
               sample);
  check_paper_claims(sample);

  // Timing rows: full-lattice classification throughput.
  benchmark::RegisterBenchmark(
      "fig5/classify_universe_2x2x2", [](benchmark::State& state) {
        const auto m = ssm::models::paper_models();
        lattice::EnumerationSpec spec;
        spec.procs = 2;
        spec.ops_per_proc = 2;
        spec.locs = 2;
        for (auto _ : state) {
          benchmark::DoNotOptimize(lattice::compute_inclusions(spec, m));
        }
      });
  benchmark::RegisterBenchmark(
      "fig5/classify_one_random_3x3x2", [](benchmark::State& state) {
        const auto m = ssm::models::paper_models();
        lattice::EnumerationSpec spec;
        spec.procs = 3;
        spec.ops_per_proc = 3;
        spec.locs = 2;
        Rng rng(1);
        for (auto _ : state) {
          const auto h = lattice::random_history(spec, rng);
          benchmark::DoNotOptimize(lattice::classify(h, m));
        }
      });
  return bench::run_benchmarks(argc, argv);
}
