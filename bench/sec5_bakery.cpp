// Section 5 regeneration: the Bakery algorithm distinguishes RC_sc from
// RC_pc.
//
// "The Bakery algorithm ... executes correctly with RC_sc but fails when
// it is run on RC_pc memory."  We run the algorithm on simulated machines
// under adversarial and random schedules, report mutual-exclusion
// violation rates per (machine, schedule), and machine-check the
// violating trace against the declarative models — the executable version
// of the paper's hand-constructed subhistories.
#include "bench_util.hpp"

#include "bakery/driver.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

struct MachineRow {
  const char* name;
  bakery::MachineFactory factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc-machine",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso-machine",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"rc-sc-machine",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_sc_machine(p, l);
       }},
      {"rc-pc-machine",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
  };
}

sim::SchedulerOptions schedule(bool adversarial, std::uint64_t seed) {
  sim::SchedulerOptions opt;
  opt.seed = seed;
  opt.max_steps = 200'000;  // bound losers spinning on a never-freed ticket
  if (adversarial) {
    opt.policy = sim::Policy::DelayDelivery;
    opt.max_spin = 200;
  }
  return opt;
}

void violation_table(std::uint32_t n, std::uint64_t runs) {
  std::printf("Bakery, n=%u, %llu runs per cell: violating runs\n", n,
              static_cast<unsigned long long>(runs));
  std::printf("%-15s %18s %18s\n", "machine", "random-schedule",
              "delay-adversary");
  for (const auto& row : machines()) {
    // exit_protocol=true: losers are eventually released, so every run
    // terminates; simultaneous entry is still detected by the monitor.
    const auto rnd = bakery::sweep_bakery(
        row.factory, n, bakery::BakeryOptions{1, true},
        schedule(false, 100), runs);
    const auto adv = bakery::sweep_bakery(
        row.factory, n, bakery::BakeryOptions{1, true},
        schedule(true, 100), runs);
    std::printf("%-15s %12llu/%-5llu %12llu/%-5llu\n", row.name,
                static_cast<unsigned long long>(rnd.violating_runs),
                static_cast<unsigned long long>(rnd.runs),
                static_cast<unsigned long long>(adv.violating_runs),
                static_cast<unsigned long long>(adv.runs));
  }
  std::printf("\n");
}

void trace_check() {
  const auto run = bakery::run_bakery(
      [](std::size_t p, std::size_t l) {
        return sim::make_rc_pc_machine(p, l);
      },
      2, bakery::BakeryOptions{1, false}, schedule(true, 7));
  std::printf("rc-pc adversarial run: cs entries=%llu violations=%llu\n",
              static_cast<unsigned long long>(run.cs_entries),
              static_cast<unsigned long long>(run.violations));
  if (run.violations == 0) {
    std::printf("(no violation; nothing to check)\n\n");
    return;
  }
  std::printf("violating trace:\n%s",
              history::format_history(run.trace).c_str());
  const bool rcsc = models::make_rc_sc()->check(run.trace).allowed;
  const bool rcpc = models::make_rc_pc()->check(run.trace).allowed;
  std::printf("declarative RCsc admits: %s (paper: forbidden -> %s)\n",
              rcsc ? "yes" : "no", !rcsc ? "MATCH" : "MISMATCH");
  std::printf("declarative RCpc admits: %s (paper: allowed -> %s)\n\n",
              rcpc ? "yes" : "no", rcpc ? "MATCH" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Section 5: Bakery distinguishes RC_sc and RC_pc",
      "Bakery is mutual-exclusion-safe on RC_sc; on RC_pc both processes "
      "can enter the critical section simultaneously");

  violation_table(2, 300);
  violation_table(3, 100);
  trace_check();

  benchmark::RegisterBenchmark(
      "sec5/bakery_run/rc-pc/adversarial", [](benchmark::State& state) {
        std::uint64_t seed = 1;
        for (auto _ : state) {
          const auto run = bakery::run_bakery(
              [](std::size_t p, std::size_t l) {
                return sim::make_rc_pc_machine(p, l);
              },
              2, bakery::BakeryOptions{1, true}, schedule(true, seed++));
          benchmark::DoNotOptimize(run.violations);
        }
      });
  benchmark::RegisterBenchmark(
      "sec5/bakery_run/rc-sc/random", [](benchmark::State& state) {
        std::uint64_t seed = 1;
        for (auto _ : state) {
          const auto run = bakery::run_bakery(
              [](std::size_t p, std::size_t l) {
                return sim::make_rc_sc_machine(p, l);
              },
              2, bakery::BakeryOptions{1, true}, schedule(false, seed++));
          benchmark::DoNotOptimize(run.violations);
        }
      });
  benchmark::RegisterBenchmark(
      "sec5/check_bakery_history/RCsc", [](benchmark::State& state) {
        const auto& t = litmus::find_test("bakery2-rcpc");
        const auto m = models::make_rc_sc();
        for (auto _ : state) {
          benchmark::DoNotOptimize(m->check(t.hist).allowed);
        }
      });
  benchmark::RegisterBenchmark(
      "sec5/check_bakery_history/RCpc", [](benchmark::State& state) {
        const auto& t = litmus::find_test("bakery2-rcpc");
        const auto m = models::make_rc_pc();
        for (auto _ : state) {
          benchmark::DoNotOptimize(m->check(t.hist).allowed);
        }
      });
  return bench::run_benchmarks(argc, argv);
}
