// Figure 1 regeneration: the store-buffering history
//
//     p: w(x)1 r(y)0
//     q: w(y)1 r(x)0
//
// "This execution is not possible with SC ... However, this execution is
// possible with TSO" (paper §3.2), with witness views
//     S_{p+w}: r_p(y)0 w_p(x)1 w_q(y)1
//     S_{q+w}: r_q(x)0 w_p(x)1 w_q(y)1
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  bench::print_banner(
      "Figure 1: TSO execution history (store buffering)",
      "not allowed by SC; allowed by TSO (witness views shown)");
  const auto& t = litmus::find_test("fig1-sb");
  bench::print_test_verdicts(
      t, {"SC", "TSO", "TSOfwd", "PC", "PCg", "Causal", "PRAM"});

  for (const char* model :
       {"SC", "TSO", "TSOfwd", "PC", "PCg", "Causal", "PRAM"}) {
    bench::time_model_on_test("fig1-sb", model);
  }
  return bench::run_benchmarks(argc, argv);
}
