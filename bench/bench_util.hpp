// Shared helpers for the figure-regeneration benches.
//
// Every bench binary follows the same shape: a custom main() prints the
// paper artifact it regenerates (so `./bench/<name>` alone reproduces the
// figure), then hands over to google-benchmark for the timing rows.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "checker/verdict.hpp"
#include "history/print.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::bench {

inline void print_banner(const char* artifact, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// Prints the named litmus test's history and the verdict (with witness
/// views) of each listed model.
inline void print_test_verdicts(const litmus::LitmusTest& t,
                                std::initializer_list<const char*> names) {
  std::printf("history:\n%s\n", history::format_history(t.hist).c_str());
  for (const char* name : names) {
    const auto model = models::make_model(name);
    const auto verdict = model->check(t.hist);
    std::printf("%-10s %s", name,
                checker::format_verdict(t.hist, verdict).c_str());
    const auto expected = t.expectation(name);
    if (expected.has_value()) {
      std::printf("           paper: %s -> %s\n",
                  *expected ? "allowed" : "forbidden",
                  *expected == verdict.allowed ? "MATCH" : "MISMATCH");
    }
  }
  std::printf("\n");
}

/// Registers a benchmark that times `model->check` on one suite test.
inline void time_model_on_test(const char* test, const char* model) {
  const std::string bench_name =
      std::string("check/") + test + "/" + model;
  benchmark::RegisterBenchmark(
      bench_name.c_str(),
      [test = std::string(test),
       model = std::string(model)](benchmark::State& state) {
        const auto& t = litmus::find_test(test);
        const auto m = models::make_model(model);
        for (auto _ : state) {
          benchmark::DoNotOptimize(m->check(t.hist).allowed);
        }
      });
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ssm::bench
