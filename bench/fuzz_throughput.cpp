// Fuzzing throughput: cases/sec through the generate -> differential
// oracle -> (on findings) shrink pipeline, per oracle configuration.
//
// Not a paper artifact — the operational question for the fuzzing
// subsystem (docs/FUZZING.md): how much coverage does a CPU-second buy,
// and what do the witness and operational oracles cost on top of the
// plain verdict-vector sweep?
//
//   ./fuzz_throughput              summary run + google-benchmark rows
//
// The summary run reports cases/sec over a fixed-seed batch for three
// oracle configurations (lattice only; + witnesses; + operational) so a
// regression in any layer is visible at a glance.
#include "bench_util.hpp"

#include <chrono>

#include "fuzz/fuzzer.hpp"

namespace {

using namespace ssm;

fuzz::FuzzOptions base_options(std::uint64_t iters) {
  fuzz::FuzzOptions o;
  o.seed = 20260807;
  o.iters = iters;
  return o;
}

double cases_per_sec(const fuzz::FuzzOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const auto report = fuzz::run_fuzz(options);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (!report.clean()) {
    std::printf("UNEXPECTED FINDINGS:\n%s", report.format().c_str());
  }
  return static_cast<double>(report.cases) / wall.count();
}

void summary() {
  ssm::bench::print_banner(
      "fuzz_throughput: differential-fuzzing cases/sec",
      "(none -- operational cost of the oracle layers, docs/FUZZING.md)");
  const std::uint64_t iters = 200;
  auto lattice_only = base_options(iters);
  lattice_only.oracle.check_witnesses = false;
  lattice_only.oracle.check_operational = false;
  auto with_witnesses = base_options(iters);
  with_witnesses.oracle.check_operational = false;
  const auto full = base_options(iters);
  std::printf("%-28s %10.1f cases/sec\n", "lattice oracle only",
              cases_per_sec(lattice_only));
  std::printf("%-28s %10.1f cases/sec\n", "+ witness re-verification",
              cases_per_sec(with_witnesses));
  std::printf("%-28s %10.1f cases/sec\n", "+ operational soundness",
              cases_per_sec(full));
  std::printf("\n");
}

void register_benchmarks() {
  benchmark::RegisterBenchmark("fuzz/generate_only",
                               [](benchmark::State& state) {
                                 fuzz::GeneratorSpec spec;
                                 Rng rng(1);
                                 for (auto _ : state) {
                                   benchmark::DoNotOptimize(
                                       fuzz::random_test(spec, rng, "b"));
                                 }
                               });
  benchmark::RegisterBenchmark(
      "fuzz/case_lattice_only", [](benchmark::State& state) {
        auto o = base_options(1);
        o.oracle.check_witnesses = false;
        o.oracle.check_operational = false;
        std::uint64_t seed = 1;
        for (auto _ : state) {
          o.seed = seed++;
          benchmark::DoNotOptimize(fuzz::run_fuzz(o).cases);
        }
      });
  benchmark::RegisterBenchmark(
      "fuzz/case_full_oracle", [](benchmark::State& state) {
        auto o = base_options(1);
        std::uint64_t seed = 1;
        for (auto _ : state) {
          o.seed = seed++;
          benchmark::DoNotOptimize(fuzz::run_fuzz(o).cases);
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  summary();
  register_benchmarks();
  return ssm::bench::run_benchmarks(argc, argv);
}
