// cluster_load — acceptance bench for the cluster routing layer
// (docs/CLUSTER.md).
//
// Forks --nodes real `ssm serve` processes (separate address spaces, so
// each node's verdict cache and metrics are genuinely its own), starts an
// in-process router over them with warm-cache shipping from the corpus,
// and drives the workload three ways:
//
//   baseline    a single in-process server, cold + warm — the per-request
//               verdict digests every cluster pass must reproduce;
//   warm        through the router after shipping: per-node canonical-key
//               hit rate (from each node's own cache counters) must be
//               >= 90%, digests byte-identical to baseline;
//   kill        through the router with --kill-iters repetitions; once a
//               quarter of the pass has completed, one node is SIGKILLed
//               mid-load.  Zero client-visible failures allowed — every
//               request must come back ok with the baseline digest.
//
// Afterwards the killed node is restarted and must re-enter rotation
// (shipped BEFORE it takes traffic, so recovery never degrades the warm
// rate).  Exit 2 on any gate violation:
//   digest mismatch | warm hit rate < 90% | kill-pass failure > 0 |
//   recovery (re-join + re-ship) not observed.
//
//   cluster_load [--corpus DIR] [--nodes N] [--conns N] [--kill-iters N]
//                [--no-kill] [--json]
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace ssm;
namespace json = common::json;
namespace metrics = common::metrics;
using Clock = std::chrono::steady_clock;

struct LoadOptions {
  std::string corpus = "tests/litmus/corpus";
  unsigned nodes = 3;
  unsigned conns = 4;
  unsigned kill_iters = 4;
  bool kill = true;
  bool json = false;
};

struct WorkItem {
  std::string id;
  std::string frame;
  std::uint64_t hash = 0;  ///< canonical routing hash (ring placement)
};

std::vector<WorkItem> build_workload(const std::string& corpus) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<WorkItem> work;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    for (const auto& t : litmus::parse_suite(text.str())) {
      WorkItem item;
      item.id = t.name;
      item.frame = "{\"op\": \"check\", \"id\": ";
      json::append_quoted(item.frame, t.name);
      item.frame += ", \"program\": ";
      json::append_quoted(item.frame, litmus::emit(t));
      item.frame += "}\n";
      item.hash = cluster::HashRing::key_hash(litmus::canonicalize(t).key);
      work.push_back(std::move(item));
    }
  }
  if (work.empty()) throw InvalidInput("no .litmus tests in " + corpus);
  return work;
}

/// Verdict-payload digest, same fields as bench/service_load: everything
/// that must not differ between a solved, cached, or failed-over answer.
std::uint64_t digest_response(const json::Value& doc) {
  std::string flat;
  for (const auto& r : doc.at("results").items()) {
    flat += r.at("model").as_string();
    flat += '|';
    flat += r.at("verdict").as_string();
    flat += '|';
    if (const auto* w = r.find("witness_fnv1a")) flat += w->as_string();
    flat += '|';
    if (const auto* n = r.find("note")) flat += n->as_string();
    flat += ';';
  }
  return service::fnv1a64(flat);
}

struct PassResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t failures = 0;    ///< not-ok responses or transport errors
  std::size_t mismatches = 0;  ///< digests differing from the reference
  std::uint64_t meta_cache_hits = 0;
  std::uint64_t meta_solved = 0;
};

/// Drives the full workload (x iters) from `conns` connections against
/// `socket`.  Fills `reference` on first sight of each id; later
/// observations that disagree count as mismatches.  `on_progress` fires
/// after every completed request (the kill trigger).
PassResult run_pass(const std::string& socket,
                    const std::vector<WorkItem>& work, unsigned conns,
                    unsigned iters,
                    std::map<std::string, std::uint64_t>& reference,
                    const std::function<void(std::size_t)>& on_progress = {}) {
  std::mutex mu;
  PassResult out;
  std::atomic<std::size_t> completed{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&] {
      PassResult local;
      try {
        auto client = service::Client::connect_unix(socket);
        for (unsigned rep = 0; rep < iters; ++rep) {
          for (const WorkItem& item : work) {
            ++local.requests;
            try {
              const json::Value doc = json::parse(client.call(item.frame));
              if (!doc.at("ok").as_bool()) {
                ++local.failures;
              } else {
                const std::uint64_t d = digest_response(doc);
                if (const auto* meta = doc.find("meta")) {
                  if (const auto* h = meta->find("cache_hits")) {
                    local.meta_cache_hits += h->as_u64();
                  }
                  if (const auto* s = meta->find("solved")) {
                    local.meta_solved += s->as_u64();
                  }
                }
                std::lock_guard<std::mutex> lock(mu);
                const auto [it, inserted] = reference.emplace(item.id, d);
                if (!inserted && it->second != d) ++local.mismatches;
              }
            } catch (const InvalidInput&) {
              ++local.failures;  // disconnect/timeout = client-visible
            }
            const std::size_t n = completed.fetch_add(1) + 1;
            if (on_progress) on_progress(n);
          }
        }
      } catch (const InvalidInput&) {
        local.failures += 1;  // could not even connect
      }
      std::lock_guard<std::mutex> lock(mu);
      out.requests += local.requests;
      out.failures += local.failures;
      out.mismatches += local.mismatches;
      out.meta_cache_hits += local.meta_cache_hits;
      out.meta_solved += local.meta_solved;
    });
  }
  for (auto& t : threads) t.join();
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

// --- forked node children ---------------------------------------------

service::Server* g_child_server = nullptr;
extern "C" void child_drain(int) {
  if (g_child_server != nullptr) g_child_server->begin_drain();
}

[[noreturn]] void node_child_main(const std::string& socket,
                                  const std::string& node_id) {
  service::ServerOptions sopts;
  sopts.unix_socket = socket;
  sopts.node_id = node_id;
  service::Server server(sopts);
  g_child_server = &server;
  std::signal(SIGTERM, child_drain);
  std::signal(SIGINT, child_drain);
  try {
    server.start();
    server.wait();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cluster_load node %s: %s\n", node_id.c_str(),
                 e.what());
    std::_Exit(1);
  }
  std::_Exit(0);
}

pid_t spawn_node(const std::string& socket, const std::string& node_id) {
  ::unlink(socket.c_str());
  const pid_t pid = ::fork();
  if (pid < 0) throw InvalidInput("fork failed");
  if (pid == 0) node_child_main(socket, node_id);
  return pid;
}

/// A node forked now but started later: the child parks on a pipe read
/// until released (or exits silently if the pipe closes unused).  The
/// recovery restart needs this — by then the parent is running router
/// threads, and forking a multithreaded (sanitized) process can wedge
/// the child, so the fork happens up front while the parent is still
/// single-threaded.
struct DeferredNode {
  pid_t pid = -1;
  int release_fd = -1;
};

DeferredNode spawn_node_deferred(const std::string& socket,
                                 const std::string& node_id) {
  int fds[2];
  if (::pipe(fds) != 0) throw InvalidInput("pipe failed");
  const pid_t pid = ::fork();
  if (pid < 0) throw InvalidInput("fork failed");
  if (pid == 0) {
    ::close(fds[1]);
    char go = 0;
    ssize_t n;
    do {
      n = ::read(fds[0], &go, 1);
    } while (n < 0 && errno == EINTR);
    ::close(fds[0]);
    if (n != 1) std::_Exit(0);  // parent never needed us
    ::unlink(socket.c_str());
    node_child_main(socket, node_id);
  }
  ::close(fds[0]);
  return {pid, fds[1]};
}

void release_node(DeferredNode& node) {
  char go = 1;
  ssize_t n;
  do {
    n = ::write(node.release_fd, &go, 1);
  } while (n < 0 && errno == EINTR);
  ::close(node.release_fd);
  node.release_fd = -1;
  if (n != 1) throw InvalidInput("deferred node release failed");
}

/// One node's cache counters, read over its own stats op (per-process
/// registry: these are the node's numbers, nobody else's).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CacheCounters node_cache_counters(const std::string& socket) {
  auto client = service::Client::connect_unix(socket);
  const json::Value doc =
      json::parse(client.call("{\"op\": \"stats\", \"id\": \"bench\"}"));
  CacheCounters out;
  if (const auto* stats = doc.find("stats")) {
    if (const auto* counters = stats->find("counters")) {
      if (const auto* h = counters->find("service.cache_hits")) {
        out.hits = h->as_u64();
      }
      if (const auto* m = counters->find("service.cache_misses")) {
        out.misses = m->as_u64();
      }
    }
  }
  return out;
}

bool eventually(const std::function<bool()>& pred, double seconds = 15.0) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

std::uint64_t counter(const char* name) {
  return metrics::Registry::global().counter(name).value();
}

int run(const LoadOptions& opts) {
  std::signal(SIGPIPE, SIG_IGN);
  const std::vector<WorkItem> work = build_workload(opts.corpus);

  // The ring hashes node *specs*, which embed the random tmpdir path.
  // Redraw the tmpdir until every node owns at least one program —
  // otherwise a sliceless node sees no traffic and has nothing to be
  // re-shipped, and the per-node gates below stop measuring anything.
  std::string dir;
  for (int attempt = 0; attempt < 64; ++attempt) {
    char tmpl[] = "/tmp/ssm-cluster-load-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw InvalidInput("mkdtemp failed");
    std::vector<std::string> draw_specs;
    for (unsigned i = 0; i < opts.nodes; ++i) {
      draw_specs.push_back("unix:" + std::string(tmpl) + "/n" +
                           std::to_string(i));
    }
    const cluster::HashRing ring(draw_specs);
    std::vector<bool> owned(opts.nodes, false);
    for (const auto& item : work) owned[ring.owner(item.hash)] = true;
    if (std::find(owned.begin(), owned.end(), false) == owned.end()) {
      dir = tmpl;
      break;
    }
    ::rmdir(tmpl);
  }
  if (dir.empty()) {
    throw InvalidInput("no tmpdir draw gave every node a corpus slice");
  }

  // Baseline: one server, cold then warm — the reference digests.  Fully
  // drained (threads joined) before any fork below.
  std::map<std::string, std::uint64_t> reference;
  PassResult base_cold, base_warm;
  {
    service::ServerOptions sopts;
    sopts.unix_socket = dir + "/baseline";
    service::Server server(sopts);
    server.start();
    base_cold = run_pass(dir + "/baseline", work, opts.conns, 1, reference);
    base_warm = run_pass(dir + "/baseline", work, opts.conns, 1, reference);
    server.begin_drain();
    server.wait();
  }
  if (base_cold.failures + base_warm.failures +
          base_cold.mismatches + base_warm.mismatches > 0) {
    std::fprintf(stderr, "cluster_load: baseline pass failed\n");
    return 2;
  }

  // The cluster: forked nodes, in-process router, corpus warm shipping.
  std::vector<std::string> node_sockets;
  std::vector<std::string> specs;
  std::vector<pid_t> pids;
  for (unsigned i = 0; i < opts.nodes; ++i) {
    node_sockets.push_back(dir + "/n" + std::to_string(i));
    specs.push_back("unix:" + node_sockets.back());
    pids.push_back(spawn_node(node_sockets.back(), "n" + std::to_string(i)));
  }
  // Pre-fork the recovery replacement while this process is still
  // single-threaded; it parks until the kill pass needs it (and exits
  // on its own if the parent dies or --no-kill never releases it).
  DeferredNode spare;
  if (opts.kill) {
    const unsigned victim = opts.nodes / 2;
    spare = spawn_node_deferred(node_sockets[victim],
                                "n" + std::to_string(victim) + "r");
  }

  cluster::RouterOptions ropts;
  ropts.unix_socket = dir + "/router";
  ropts.nodes = specs;
  ropts.ship_corpus = opts.corpus;
  ropts.probe_interval_ms = 100;
  ropts.backoff_base_ms = 5;
  ropts.backoff_cap_ms = 100;
  ropts.router_id = "bench-router";
  ropts.quiet = opts.json;
  cluster::Router router(ropts);
  router.start();
  const bool all_up = eventually([&] {
    for (unsigned i = 0; i < opts.nodes; ++i) {
      if (!router.node_up(i)) return false;
    }
    return true;
  });
  if (!all_up) {
    std::fprintf(stderr, "cluster_load: nodes never came up\n");
    return 2;
  }
  const std::uint64_t shipped_startup = counter("cluster.shipped_records");

  // Warm pass: shipping already populated every node's home slice, so the
  // per-node hit rate over this pass must clear 90%.
  std::vector<CacheCounters> before;
  for (const auto& s : node_sockets) before.push_back(node_cache_counters(s));
  PassResult warm =
      run_pass(dir + "/router", work, opts.conns, 1, reference);
  std::vector<double> hit_rates;
  bool hit_rate_ok = true;
  for (unsigned i = 0; i < opts.nodes; ++i) {
    const CacheCounters after = node_cache_counters(node_sockets[i]);
    const std::uint64_t h = after.hits - before[i].hits;
    const std::uint64_t m = after.misses - before[i].misses;
    const double rate =
        h + m > 0 ? static_cast<double>(h) / static_cast<double>(h + m) : 1.0;
    hit_rates.push_back(rate);
    if (rate < 0.90) hit_rate_ok = false;
  }

  // Kill pass: SIGKILL one node once a quarter of the load has completed;
  // the router must absorb it — zero client-visible failures, digests
  // still byte-identical.
  PassResult kill;
  std::uint64_t failovers = 0, retries = 0;
  bool recovered = true;
  std::uint64_t reshipped = 0;
  if (opts.kill) {
    const unsigned victim = opts.nodes / 2;
    const std::size_t trigger =
        work.size() * opts.kill_iters * opts.conns / 4;
    std::atomic<bool> killed{false};
    const std::uint64_t failovers0 = counter("cluster.failovers");
    const std::uint64_t retries0 = counter("cluster.retries");
    kill = run_pass(dir + "/router", work, opts.conns, opts.kill_iters,
                    reference, [&](std::size_t done) {
                      if (done >= trigger &&
                          !killed.exchange(true, std::memory_order_acq_rel)) {
                        // Reap before returning: the victim is confirmed
                        // dead while three quarters of the pass is still
                        // in flight, so the failover path genuinely runs.
                        ::kill(pids[victim], SIGKILL);
                        ::waitpid(pids[victim], nullptr, 0);
                      }
                    });
    failovers = counter("cluster.failovers") - failovers0;
    retries = counter("cluster.retries") - retries0;

    // Recovery: restart the victim; it must be re-shipped and re-enter
    // rotation without manual intervention.  Wait for the router to mark
    // it down first — restarting into a not-yet-noticed death would skip
    // the down→up transition that triggers shipping.
    const bool went_down = eventually([&] { return !router.node_up(victim); });
    const std::uint64_t shipped0 = counter("cluster.shipped_records");
    release_node(spare);
    pids[victim] = spare.pid;
    recovered =
        went_down && eventually([&] { return router.node_up(victim); });
    reshipped = counter("cluster.shipped_records") - shipped0;
    if (reshipped == 0) recovered = false;
  }

  router.begin_drain();
  router.wait();
  for (unsigned i = 0; i < opts.nodes; ++i) {
    ::kill(pids[i], SIGTERM);
    ::waitpid(pids[i], nullptr, 0);
  }
  if (spare.release_fd >= 0) {  // --no-kill: never released, exits on EOF
    ::close(spare.release_fd);
    ::waitpid(spare.pid, nullptr, 0);
  }
  std::filesystem::remove_all(dir);

  std::uint64_t combined = 0xcbf29ce484222325ULL;
  for (const auto& [id, d] : reference) {
    combined ^= d;
    combined *= 0x100000001b3ULL;
  }
  const bool identical = warm.mismatches + kill.mismatches == 0;
  const bool kill_clean = kill.failures == 0;
  const bool ok = identical && hit_rate_ok && kill_clean && recovered;

  if (opts.json) {
    std::string rates;
    for (unsigned i = 0; i < opts.nodes; ++i) {
      if (i > 0) rates += ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", hit_rates[i]);
      rates += buf;
    }
    std::printf(
        "{\n"
        "  \"benchmark\": \"cluster_load\",\n"
        "  \"corpus\": \"%s\",\n"
        "  \"nodes\": %u,\n"
        "  \"conns\": %u,\n"
        "  \"programs\": %zu,\n"
        "  \"baseline\": {\"cold_s\": %.3f, \"warm_s\": %.3f},\n"
        "  \"shipped_records_startup\": %llu,\n"
        "  \"warm\": {\"requests\": %zu, \"seconds\": %.3f, \"rps\": %.1f,"
        " \"failures\": %zu, \"meta_cache_hits\": %llu,"
        " \"meta_solved\": %llu},\n"
        "  \"node_hit_rates\": [%s],\n"
        "  \"kill\": {\"requests\": %zu, \"seconds\": %.3f, \"rps\": %.1f,"
        " \"failures\": %zu, \"failovers\": %llu, \"retries\": %llu},\n"
        "  \"recovery\": {\"rejoined\": %s, \"reshipped_records\": %llu},\n"
        "  \"digest_fnv1a\": \"%s\",\n"
        "  \"verdicts_identical\": %s,\n"
        "  \"hit_rate_ok\": %s,\n"
        "  \"kill_zero_failures\": %s,\n"
        "  \"ok\": %s\n"
        "}\n",
        opts.corpus.c_str(), opts.nodes, opts.conns, work.size(),
        base_cold.seconds, base_warm.seconds,
        static_cast<unsigned long long>(shipped_startup), warm.requests,
        warm.seconds,
        warm.seconds > 0 ? static_cast<double>(warm.requests) / warm.seconds
                         : 0.0,
        warm.failures, static_cast<unsigned long long>(warm.meta_cache_hits),
        static_cast<unsigned long long>(warm.meta_solved), rates.c_str(),
        kill.requests, kill.seconds,
        kill.seconds > 0 ? static_cast<double>(kill.requests) / kill.seconds
                         : 0.0,
        kill.failures, static_cast<unsigned long long>(failovers),
        static_cast<unsigned long long>(retries), recovered ? "true" : "false",
        static_cast<unsigned long long>(reshipped),
        service::hex16(combined).c_str(), identical ? "true" : "false",
        hit_rate_ok ? "true" : "false", kill_clean ? "true" : "false",
        ok ? "true" : "false");
  } else {
    std::printf("cluster_load: %zu programs, %u nodes, %u conns\n",
                work.size(), opts.nodes, opts.conns);
    std::printf("  baseline: cold %.3fs warm %.3fs\n", base_cold.seconds,
                base_warm.seconds);
    std::printf("  shipped at startup: %llu records\n",
                static_cast<unsigned long long>(shipped_startup));
    std::printf("  warm via router: %zu req in %.3fs, failures %zu, "
                "hits/solved %llu/%llu\n",
                warm.requests, warm.seconds, warm.failures,
                static_cast<unsigned long long>(warm.meta_cache_hits),
                static_cast<unsigned long long>(warm.meta_solved));
    for (unsigned i = 0; i < opts.nodes; ++i) {
      std::printf("  node %u hit rate: %.1f%%%s\n", i, hit_rates[i] * 100.0,
                  hit_rates[i] < 0.90 ? "  [BELOW 90% FLOOR]" : "");
    }
    if (opts.kill) {
      std::printf("  kill pass: %zu req in %.3fs, failures %zu, "
                  "failovers %llu, retries %llu\n",
                  kill.requests, kill.seconds, kill.failures,
                  static_cast<unsigned long long>(failovers),
                  static_cast<unsigned long long>(retries));
      std::printf("  recovery: rejoined %s, reshipped %llu records\n",
                  recovered ? "yes" : "NO",
                  static_cast<unsigned long long>(reshipped));
    }
    std::printf("  digest %s   identical: %s   overall: %s\n",
                service::hex16(combined).c_str(), identical ? "yes" : "NO",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cluster_load: flag %s needs a value\n",
                     arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      opts.corpus = value();
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--conns") {
      opts.conns = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--kill-iters") {
      opts.kill_iters =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--no-kill") {
      opts.kill = false;
    } else if (arg == "--json") {
      opts.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: cluster_load [--corpus DIR] [--nodes N] "
                   "[--conns N] [--kill-iters N] [--no-kill] [--json]\n");
      return 64;
    }
  }
  if (opts.nodes < 2 || opts.conns == 0 || opts.kill_iters == 0) {
    std::fprintf(stderr,
                 "cluster_load: --nodes must be >= 2, --conns/--kill-iters "
                 "positive\n");
    return 64;
  }
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cluster_load: %s\n", e.what());
    return 1;
  }
}
