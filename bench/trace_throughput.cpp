// Streaming trace-checker throughput: ops/sec through the full parse ->
// window -> check pipeline on a multi-million-op SC trace, in bounded
// memory (docs/TRACES.md).
//
// Not a paper artifact — the operational acceptance gate for the
// streaming subsystem:
//
//   * sustained rate on a seeded 1M-op SC workload trace must clear the
//     --min-rate floor (default 100k ops/sec; exit 2 below it);
//   * the trace.window_ops gauge must never exceed the configured window
//     cap (exit 3 on a breach — the bounded-memory contract);
//   * two passes over the same trace must produce the same verdict-stream
//     FNV-1a digest (exit 4 — determinism);
//   * every violation streamed from the buggy RC_pc bakery trace must be
//     re-confirmed offline: the exported litmus window is forbidden by
//     the whole-history SC checker AND admitted by RCpc with a
//     certificate that survives the independent witness verifier
//     (exit 5).
//
//   ./trace_throughput [--ops N] [--jobs J] [--window W] [--min-rate R]
//                      [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"
#include "trace/format.hpp"
#include "trace/streaming.hpp"
#include "trace/trace_export.hpp"

namespace {

using namespace ssm;

struct Options {
  std::uint64_t ops = 1'000'000;
  std::uint64_t window = 256;
  double min_rate = 100'000.0;  // ops/sec floor (0 disables)
  std::string json_path;
};

struct PassResult {
  double seconds = 0;
  trace::StreamSummary summary;
  std::int64_t gauge_breaches = 0;
};

/// One full streaming pass: parse every line, feed, finish.  Checks the
/// bounded-memory gauge after every window close (the gauge is live while
/// a window is open, so <= cap at every observation point).
PassResult stream_pass(const std::string& text, const Options& opts) {
  std::istringstream in(text);
  trace::TraceReader reader(in);
  trace::StreamOptions sopts;
  sopts.window_ops = opts.window;
  auto& gauge = common::metrics::Registry::global().gauge("trace.window_ops");
  PassResult result;
  const auto start = std::chrono::steady_clock::now();
  trace::StreamingChecker checker(reader.read_header(), sopts);
  checker.set_verdict_sink([&](const trace::WindowVerdict& v) {
    if (v.ops > opts.window) ++result.gauge_breaches;
    if (gauge.value() > static_cast<std::int64_t>(opts.window)) {
      ++result.gauge_breaches;
    }
  });
  trace::TraceOp op;
  while (reader.next(op)) checker.feed(op);
  result.summary = checker.finish();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

/// Streams the buggy RC_pc bakery trace against SC and re-confirms every
/// violation offline.  Returns the number of re-confirmed violations, or
/// -1 on any re-confirmation failure.
int reconfirm_bakery_violations() {
  trace::TraceGenOptions gopts;
  gopts.scenario = "bakery";
  gopts.machine = "rc-pc";
  gopts.procs = 2;
  gopts.seed = 3;
  std::ostringstream gen;
  (void)trace::generate_trace(gopts, gen);
  const std::string text = gen.str();

  std::istringstream in(text);
  trace::TraceReader reader(in);
  trace::StreamOptions sopts;
  sopts.model = "SC";
  trace::StreamingChecker checker(reader.read_header(), sopts);
  std::vector<std::string> litmuses;
  checker.set_verdict_sink([&](const trace::WindowVerdict& v) {
    if (v.status == trace::WindowVerdict::Status::Violation) {
      litmuses.push_back(v.litmus);
    }
  });
  trace::TraceOp op;
  while (reader.next(op)) checker.feed(op);
  (void)checker.finish();

  int confirmed = 0;
  for (const std::string& text_litmus : litmuses) {
    const auto suite = litmus::parse_suite(text_litmus);
    if (suite.size() != 1) return -1;
    const auto& t = suite[0];
    const auto sc = models::make_model("SC")->check(t.hist);
    if (sc.allowed || sc.inconclusive) return -1;
    const auto rcpc = models::make_model("RCpc")->check(t.hist);
    if (!rcpc.allowed) return -1;
    const auto w = checker::witness_from_verdict(t.hist, "RCpc", rcpc);
    if (checker::verify_witness(t.hist, w).has_value()) return -1;
    ++confirmed;
  }
  return confirmed;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  unsigned jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_throughput: %s needs a value\n",
                     arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--ops") {
      opts.ops = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--window") {
      opts.window = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--min-rate") {
      opts.min_rate = std::strtod(value(), nullptr);
    } else if (arg == "--json") {
      opts.json_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: trace_throughput [--ops N] [--jobs J] "
                   "[--window W] [--min-rate R] [--json FILE]\n");
      return 64;
    }
  }
  if (jobs != 0) common::ThreadPool::set_global_jobs(jobs);

  std::printf("trace_throughput: streaming checker on a %llu-op SC trace "
              "(window %llu)\n",
              static_cast<unsigned long long>(opts.ops),
              static_cast<unsigned long long>(opts.window));

  trace::TraceGenOptions gopts;
  gopts.machine = "sc";
  gopts.ops = opts.ops;
  gopts.seed = 20260809;
  std::ostringstream gen;
  const auto gen_start = std::chrono::steady_clock::now();
  const auto gen_result = trace::generate_trace(gopts, gen);
  const double gen_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - gen_start)
                                 .count();
  const std::string text = gen.str();
  std::printf("  gen:    %8.0f ops/sec (%llu ops, %.2fs, %.1f MB)\n",
              static_cast<double>(gen_result.ops) / gen_seconds,
              static_cast<unsigned long long>(gen_result.ops), gen_seconds,
              static_cast<double>(text.size()) / 1e6);

  const PassResult pass1 = stream_pass(text, opts);
  const PassResult pass2 = stream_pass(text, opts);
  const double rate =
      static_cast<double>(pass1.summary.ops) / pass1.seconds;
  std::printf("  check:  %8.0f ops/sec (%llu windows, %.2fs, digest %s)\n",
              rate, static_cast<unsigned long long>(pass1.summary.windows),
              pass1.seconds,
              trace::hex16(pass1.summary.digest).c_str());

  const int bakery_confirmed = reconfirm_bakery_violations();
  std::printf("  bakery: %d RC_pc violation(s) re-confirmed offline\n",
              bakery_confirmed);

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::trunc);
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"benchmark\": \"trace_throughput\",\n"
        "  \"ops\": %llu,\n"
        "  \"window\": %llu,\n"
        "  \"gen_ops_per_sec\": %.0f,\n"
        "  \"check_ops_per_sec\": %.0f,\n"
        "  \"windows\": %llu,\n"
        "  \"violations\": %llu,\n"
        "  \"inconclusive\": %llu,\n"
        "  \"digest_fnv1a\": \"%s\",\n"
        "  \"digest_stable\": %s,\n"
        "  \"window_cap_respected\": %s,\n"
        "  \"bakery_violations_reconfirmed\": %d\n"
        "}\n",
        static_cast<unsigned long long>(opts.ops),
        static_cast<unsigned long long>(opts.window),
        static_cast<double>(gen_result.ops) / gen_seconds, rate,
        static_cast<unsigned long long>(pass1.summary.windows),
        static_cast<unsigned long long>(pass1.summary.violations),
        static_cast<unsigned long long>(pass1.summary.inconclusive),
        trace::hex16(pass1.summary.digest).c_str(),
        pass1.summary.digest == pass2.summary.digest ? "true" : "false",
        pass1.gauge_breaches + pass2.gauge_breaches == 0 ? "true" : "false",
        bakery_confirmed);
    out << buf;
  }

  if (pass1.gauge_breaches + pass2.gauge_breaches != 0) {
    std::fprintf(stderr, "FAIL: trace.window_ops exceeded the %llu cap\n",
                 static_cast<unsigned long long>(opts.window));
    return 3;
  }
  if (pass1.summary.digest != pass2.summary.digest) {
    std::fprintf(stderr, "FAIL: verdict-stream digest differs across runs\n");
    return 4;
  }
  if (bakery_confirmed < 1) {
    std::fprintf(stderr,
                 "FAIL: RC_pc bakery violations missing or unconfirmed\n");
    return 5;
  }
  if (opts.min_rate > 0 && rate < opts.min_rate) {
    std::fprintf(stderr, "FAIL: %.0f ops/sec below the %.0f floor\n", rate,
                 opts.min_rate);
    return 2;
  }
  std::printf("trace_throughput OK\n");
  return 0;
}
