// Portfolio closure: how close racing both backends comes to the
// per-cell best backend, and how many search-INCONCLUSIVEs the race
// retires at the same budget (docs/PORTFOLIO.md).
//
// Not a paper artifact — this measures the PR-7 second decision backend.
// The workload runs the builtin suite × all 18 registry models three
// times under one budget: once per backend (search, encode, race), every
// cell on one thread so per-cell walls are honest.  For each cell the
// per-backend wall time and verdict are recorded; the race's wall is then
// compared against min(search, encode) — the "oracle best" a perfect
// per-cell backend picker would achieve.
//
// Modes:
//   ./portfolio_close [--max-nodes N] [--json out.json]
//
// JSON record (BENCH_portfolio.json trajectory): per-backend cell counts,
// inconclusive counts, wall seconds, the race's retire rate over search's
// undecided cells (acceptance floor: >= 0.50, enforced by exit code), the
// race-vs-oracle-best closure ratio, and the global metrics snapshot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"
#include "solve/portfolio.hpp"

namespace {

using namespace ssm;

struct BackendTotals {
  std::uint64_t cells = 0;
  std::uint64_t inconclusive = 0;
  double wall_s = 0.0;
};

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t max_nodes = 100;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      max_nodes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: portfolio_close [--max-nodes N] [--json out.json]\n");
      return 64;
    }
  }

  common::metrics::Registry::global().reset();
  common::ThreadPool::set_global_jobs(1);
  const checker::BudgetSpec spec{.max_nodes = max_nodes, .timeout_ms = 0};
  const auto& suite = litmus::builtin_suite();
  const auto names = models::model_names();

  // Per-cell verdict+wall per backend, cells in (test, model) order.
  const auto sweep = [&](checker::Backend backend, BackendTotals& totals,
                         std::vector<double>* walls,
                         std::vector<bool>* undecided) {
    for (const auto& t : suite) {
      for (const auto& name : names) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto v = checker::Portfolio::check(t.hist, name, backend, spec);
        const double w = wall_since(t0);
        ++totals.cells;
        totals.wall_s += w;
        if (v.inconclusive) ++totals.inconclusive;
        if (walls != nullptr) walls->push_back(w);
        if (undecided != nullptr) undecided->push_back(v.inconclusive);
      }
    }
  };

  BackendTotals search, encode, race;
  std::vector<double> search_walls, encode_walls, race_walls;
  std::vector<bool> search_undecided, race_undecided;
  sweep(checker::Backend::Search, search, &search_walls, &search_undecided);
  sweep(checker::Backend::Encode, encode, &encode_walls, nullptr);
  sweep(checker::Backend::Race, race, &race_walls, &race_undecided);

  // Race vs the per-cell best single backend ("oracle best").
  double best_wall = 0.0;
  for (std::size_t i = 0; i < race_walls.size(); ++i) {
    best_wall += std::min(search_walls[i], encode_walls[i]);
  }
  const double closure =
      race.wall_s == 0.0 ? 0.0 : race.wall_s / std::max(best_wall, 1e-9);

  // The acceptance metric: of the cells search left undecided, how many
  // does the race retire at the SAME budget?
  std::uint64_t retired = 0;
  for (std::size_t i = 0; i < search_undecided.size(); ++i) {
    if (search_undecided[i] && !race_undecided[i]) ++retired;
  }
  const double retire_rate =
      search.inconclusive == 0
          ? 1.0
          : static_cast<double>(retired) /
                static_cast<double>(search.inconclusive);

  const std::uint64_t search_wins =
      common::metrics::Registry::global()
          .counter("checker.portfolio_search_wins")
          .value();
  const std::uint64_t encode_wins =
      common::metrics::Registry::global()
          .counter("checker.portfolio_encode_wins")
          .value();

  std::printf("portfolio_close: %zu tests x %zu models, max_nodes=%llu\n",
              suite.size(), names.size(),
              static_cast<unsigned long long>(max_nodes));
  std::printf("search: %llu cells, %llu undecided, %.3fs\n",
              static_cast<unsigned long long>(search.cells),
              static_cast<unsigned long long>(search.inconclusive),
              search.wall_s);
  std::printf("encode: %llu cells, %llu undecided, %.3fs\n",
              static_cast<unsigned long long>(encode.cells),
              static_cast<unsigned long long>(encode.inconclusive),
              encode.wall_s);
  std::printf("race:   %llu cells, %llu undecided, %.3fs "
              "(%.2fx oracle-best %.3fs)\n",
              static_cast<unsigned long long>(race.cells),
              static_cast<unsigned long long>(race.inconclusive), race.wall_s,
              closure, best_wall);
  std::printf("race retires %llu/%llu search-undecided cells (rate %.3f); "
              "wins: search %llu, encode %llu\n",
              static_cast<unsigned long long>(retired),
              static_cast<unsigned long long>(search.inconclusive),
              retire_rate, static_cast<unsigned long long>(search_wins),
              static_cast<unsigned long long>(encode_wins));

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char buf[1536];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"benchmark\": \"portfolio_close\",\n"
        "  \"suite_tests\": %zu,\n"
        "  \"models\": %zu,\n"
        "  \"max_nodes\": %llu,\n"
        "  \"cells_per_backend\": %llu,\n"
        "  \"search_inconclusive\": %llu,\n"
        "  \"search_wall_seconds\": %.6f,\n"
        "  \"encode_inconclusive\": %llu,\n"
        "  \"encode_wall_seconds\": %.6f,\n"
        "  \"race_inconclusive\": %llu,\n"
        "  \"race_wall_seconds\": %.6f,\n"
        "  \"oracle_best_wall_seconds\": %.6f,\n"
        "  \"race_closure_ratio\": %.4f,\n"
        "  \"race_retired\": %llu,\n"
        "  \"race_retire_rate\": %.4f,\n"
        "  \"portfolio_search_wins\": %llu,\n"
        "  \"portfolio_encode_wins\": %llu,\n"
        "  ",
        suite.size(), names.size(),
        static_cast<unsigned long long>(max_nodes),
        static_cast<unsigned long long>(search.cells),
        static_cast<unsigned long long>(search.inconclusive), search.wall_s,
        static_cast<unsigned long long>(encode.inconclusive), encode.wall_s,
        static_cast<unsigned long long>(race.inconclusive), race.wall_s,
        best_wall, closure, static_cast<unsigned long long>(retired),
        retire_rate, static_cast<unsigned long long>(search_wins),
        static_cast<unsigned long long>(encode_wins));
    std::string snapshot;
    common::metrics::append_global_snapshot(snapshot);
    out << buf << snapshot << "\n}\n";
  }
  // The retire rate is the whole point: below 50% the second backend is
  // not pulling its weight on exactly the cells the search cannot decide.
  return retire_rate >= 0.50 ? 0 : 1;
}
