// State-space characterization: exhaustive schedule exploration of every
// machine on the paper's canonical programs.
//
// For each (machine, program) cell we report the number of distinct
// complete traces and of explored schedules — an exact measure of how
// much behavioural freedom each memory design buys, the operational twin
// of Figure 5's set containments.  The trace-set inclusions
// (sc ⊆ tso ⊆ pram on every program) are also verified and printed.
#include "bench_util.hpp"

#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/explore.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

struct MachineRow {
  const char* name;
  sim::ExploreFactory factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"coherent",
       [](std::size_t p, std::size_t l) {
         return sim::make_coherent_machine(p, l);
       }},
      {"causal",
       [](std::size_t p, std::size_t l) {
         return sim::make_causal_machine(p, l);
       }},
      {"pram",
       [](std::size_t p, std::size_t l) {
         return sim::make_pram_machine(p, l);
       }},
  };
}

struct ProgramRow {
  const char* name;
  sim::Plan plan;
  std::size_t locs;
};

sim::Plan plan2(std::initializer_list<sim::PlannedOp> a,
                std::initializer_list<sim::PlannedOp> b) {
  sim::Plan p(2);
  p[0] = a;
  p[1] = b;
  return p;
}

std::vector<ProgramRow> programs() {
  using Op = sim::PlannedOp;
  constexpr OpLabel O = OpLabel::Ordinary;
  return {
      {"sb (fig.1)",
       plan2({Op{true, 0, 1, O}, Op{false, 1, 0, O}},
             {Op{true, 1, 1, O}, Op{false, 0, 0, O}}),
       2},
      {"mp",
       plan2({Op{true, 0, 1, O}, Op{true, 1, 1, O}},
             {Op{false, 1, 0, O}, Op{false, 0, 0, O}}),
       2},
      {"fig.3",
       plan2({Op{true, 0, 1, O}, Op{false, 0, 0, O}, Op{false, 0, 0, O}},
             {Op{true, 0, 2, O}, Op{false, 0, 0, O}, Op{false, 0, 0, O}}),
       1},
      {"corr",
       plan2({Op{true, 0, 1, O}, Op{true, 0, 2, O}},
             {Op{false, 0, 0, O}, Op{false, 0, 0, O}}),
       1},
  };
}

void table() {
  const auto progs = programs();
  std::printf("%-10s", "machine");
  for (const auto& pr : progs) std::printf("%16s", pr.name);
  std::printf("\n");
  std::vector<std::vector<std::set<std::string>>> traces;
  for (const auto& m : machines()) {
    std::printf("%-10s", m.name);
    traces.emplace_back();
    for (const auto& pr : progs) {
      const auto result = sim::explore_traces(m.factory, pr.plan, pr.locs);
      traces.back().push_back(result.traces);
      std::printf("        %4zu/%-4llu", result.traces.size(),
                  static_cast<unsigned long long>(result.schedules));
    }
    std::printf("\n");
  }
  std::printf("(cells: distinct traces / schedules explored)\n\n");

  // Inclusion checks along the machine chain sc -> tso -> pram.
  const std::size_t sc_row = 0, tso_row = 1, pram_row = 4;
  for (std::size_t pi = 0; pi < progs.size(); ++pi) {
    auto subset = [&](std::size_t a, std::size_t b) {
      for (const auto& t : traces[a][pi]) {
        if (!traces[b][pi].count(t)) return false;
      }
      return true;
    };
    std::printf("%-10s traces(sc) subset-of traces(tso): %s; "
                "traces(tso) subset-of traces(pram): %s\n",
                progs[pi].name, subset(sc_row, tso_row) ? "yes" : "NO",
                subset(tso_row, pram_row) ? "yes" : "NO");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "State spaces: exhaustive machine exploration",
      "weaker memories reach strictly more outcomes (the operational view "
      "of Figure 5)");
  table();

  for (const auto& m : machines()) {
    const std::string name = std::string("explore/sb/") + m.name;
    benchmark::RegisterBenchmark(
        name.c_str(), [factory = m.factory](benchmark::State& state) {
          const auto pr = programs()[0];
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                sim::explore_traces(factory, pr.plan, pr.locs).traces.size());
          }
        });
  }
  return bench::run_benchmarks(argc, argv);
}
