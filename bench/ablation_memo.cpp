// Ablations for the two main design choices in the decision engine
// (called out in DESIGN.md §5):
//
//   1. memoization of failed (prefix-mask, memory-state) pairs in the
//      legal-view search — without it the DFS re-explores isomorphic
//      dead ends;
//   2. base-relation pruning of the mutual-consistency enumeration —
//      TSO's candidate write orders are enumerated as linear extensions
//      of ppo; with an empty base every permutation of the writes is
//      tried.  Verdicts are identical by construction (pruned candidates
//      are exactly the infeasible ones); only the work changes.
//
// Each ablation row reports time and (for 1) search-node counts, with
// result equality asserted on every input.
#include "bench_util.hpp"

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "lattice/enumerate.hpp"
#include "order/orders.hpp"
#include "relation/topo.hpp"

namespace {

using namespace ssm;

history::SystemHistory random_h(std::uint32_t ops, std::uint64_t seed) {
  lattice::EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = ops;
  spec.locs = 2;
  Rng rng(seed);
  return lattice::random_history(spec, rng);
}

/// Hand-rolled TSO decision with a configurable enumeration base, used by
/// ablation 2 (the production model always prunes).
bool tso_check(const history::SystemHistory& h, bool prune,
               std::uint64_t* orders_tried) {
  const auto ppo = order::partial_program_order(h);
  const rel::Relation base = prune ? ppo : rel::Relation(h.size());
  const auto writes = checker::write_ops(h);
  bool allowed = false;
  rel::for_each_linear_extension(
      base, writes, [&](const std::vector<std::size_t>& worder) {
        ++*orders_tried;
        rel::Relation constraints = ppo;
        for (std::size_t i = 0; i < worder.size(); ++i) {
          for (std::size_t j = i + 1; j < worder.size(); ++j) {
            constraints.add(worder[i], worder[j]);
          }
        }
        for (ProcId p = 0; p < h.num_processors(); ++p) {
          if (!checker::find_legal_view(h, checker::own_plus_writes(h, p),
                                        constraints)) {
            return true;  // next write order
          }
        }
        allowed = true;
        return false;
      });
  return allowed;
}

void memo_ablation_table() {
  std::printf("ablation 1: failed-state memoization in the view search\n");
  std::printf("%-6s %14s %14s %10s\n", "ops", "nodes(memo)",
              "nodes(no-memo)", "speedup");
  for (std::uint32_t ops : {3u, 4u, 5u, 6u}) {
    std::uint64_t nodes_on = 0, nodes_off = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const auto h = random_h(ops, seed);
      const auto po = order::program_order(h);
      const auto universe = checker::all_ops(h);
      checker::set_memoization_enabled(true);
      const bool with = checker::find_legal_view(h, universe, po)
                            .has_value();
      nodes_on += checker::last_search_stats().nodes;
      checker::set_memoization_enabled(false);
      const bool without = checker::find_legal_view(h, universe, po)
                               .has_value();
      nodes_off += checker::last_search_stats().nodes;
      checker::set_memoization_enabled(true);
      if (with != without) {
        std::printf("  RESULT MISMATCH at seed %llu!\n",
                    static_cast<unsigned long long>(seed));
      }
    }
    std::printf("%-6u %14llu %14llu %9.2fx\n", ops * 2,
                static_cast<unsigned long long>(nodes_on),
                static_cast<unsigned long long>(nodes_off),
                static_cast<double>(nodes_off) /
                    static_cast<double>(nodes_on == 0 ? 1 : nodes_on));
  }
  std::printf("\n");
}

void prune_ablation_table() {
  std::printf("ablation 2: ppo-based pruning of TSO write-order "
              "enumeration\n");
  std::printf("%-6s %16s %16s\n", "ops", "orders(pruned)",
              "orders(naive)");
  for (std::uint32_t ops : {3u, 4u, 5u}) {
    std::uint64_t pruned = 0, naive = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto h = random_h(ops, 100 + seed);
      std::uint64_t a = 0, b = 0;
      const bool with = tso_check(h, true, &a);
      const bool without = tso_check(h, false, &b);
      pruned += a;
      naive += b;
      if (with != without) {
        std::printf("  RESULT MISMATCH at seed %llu!\n",
                    static_cast<unsigned long long>(seed));
      }
    }
    std::printf("%-6u %16llu %16llu\n", ops * 2,
                static_cast<unsigned long long>(pruned),
                static_cast<unsigned long long>(naive));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Ablations: memoization and enumeration pruning",
                      "(engine design choices; verdicts identical, work "
                      "differs)");
  memo_ablation_table();
  prune_ablation_table();

  benchmark::RegisterBenchmark(
      "ablation/search_memo_on", [](benchmark::State& state) {
        const auto h = random_h(6, 7);
        const auto po = order::program_order(h);
        const auto universe = checker::all_ops(h);
        checker::set_memoization_enabled(true);
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              checker::find_legal_view(h, universe, po).has_value());
        }
      });
  benchmark::RegisterBenchmark(
      "ablation/search_memo_off", [](benchmark::State& state) {
        const auto h = random_h(6, 7);
        const auto po = order::program_order(h);
        const auto universe = checker::all_ops(h);
        checker::set_memoization_enabled(false);
        for (auto _ : state) {
          benchmark::DoNotOptimize(
              checker::find_legal_view(h, universe, po).has_value());
        }
        checker::set_memoization_enabled(true);
      });
  return bench::run_benchmarks(argc, argv);
}
