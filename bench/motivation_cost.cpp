// §1 motivation, quantified: "strong consistency ... can have a
// significant impact on the performance of applications [and] limits the
// scalability of shared memory systems."
//
// We price each machine's operations with a parameterized interconnect
// model (see simulate/cost_model.hpp) and sweep the interconnect latency:
// the *shape* to reproduce is SC's cost growing linearly with latency
// while replica-based weak memories stay flat near the local-access cost,
// with TSO in between (reads miss to memory) and RC_sc paying only for
// its synchronization accesses.  TSO vs RC_sc ordering is genuinely
// workload-dependent: TSO's cost tracks the read-miss rate, RC_sc's the
// synchronization fraction — the sweep makes the crossover visible.
// Numbers are synthetic by construction (there is no 1993 DASH to
// measure); the ordering and the crossover behaviour are the result.
#include "bench_util.hpp"

#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/cost_model.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

struct MachineRow {
  const char* name;
  sim::CostFactory factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"rc-sc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_sc_machine(p, l);
       }},
      {"rc-pc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
      {"coherent",
       [](std::size_t p, std::size_t l) {
         return sim::make_coherent_machine(p, l);
       }},
      {"causal",
       [](std::size_t p, std::size_t l) {
         return sim::make_causal_machine(p, l);
       }},
      {"pram",
       [](std::size_t p, std::size_t l) {
         return sim::make_pram_machine(p, l);
       }},
  };
}

/// A data-race-free-style workload: mostly ordinary data accesses with a
/// sprinkling of labeled synchronization on dedicated locations — the
/// "properly labeled program" the RC design targets.
sim::Plan workload(std::uint32_t procs, std::uint32_t ops,
                   std::uint64_t seed) {
  sim::WorkloadSpec spec;
  spec.procs = procs;
  spec.locs = 6;
  spec.ops_per_proc = ops;
  spec.sync_locs = 2;  // locations 0,1 labeled-only
  spec.write_percent = 40;
  Rng rng(seed);
  return sim::make_plan(spec, rng);
}

void latency_sweep() {
  const auto plan = workload(4, 64, 42);
  std::printf("cycles per operation (4 procs x 64 ops, DRF-style "
              "workload)\n");
  std::printf("%-10s", "machine");
  for (std::uint64_t lat : {10ULL, 50ULL, 100ULL, 500ULL, 1000ULL}) {
    std::printf("   L=%-6llu", static_cast<unsigned long long>(lat));
  }
  std::printf("\n");
  for (const auto& row : machines()) {
    std::printf("%-10s", row.name);
    for (std::uint64_t lat : {10ULL, 50ULL, 100ULL, 500ULL, 1000ULL}) {
      sim::CostParams params;
      params.interconnect = lat;
      params.memory = lat / 5 + 1;
      const auto report =
          sim::measure_workload(row.factory, plan, 6, params, 7);
      std::printf(" %9.1f", report.cycles_per_op());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void op_mix() {
  const auto plan = workload(4, 64, 42);
  sim::CostParams params;
  std::printf("operation mix (same workload): local / memory / global\n");
  for (const auto& row : machines()) {
    const auto r = sim::measure_workload(row.factory, plan, 6, params, 7);
    std::printf("%-10s %5llu / %5llu / %5llu  of %llu ops\n", row.name,
                static_cast<unsigned long long>(r.local_ops),
                static_cast<unsigned long long>(r.memory_ops),
                static_cast<unsigned long long>(r.global_ops),
                static_cast<unsigned long long>(r.ops));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Section 1 motivation: the cost of consistency (synthetic model)",
      "stronger consistency pays the interconnect on more operations; "
      "weak memories keep operations local");
  latency_sweep();
  op_mix();

  for (const auto& row : machines()) {
    const std::string name = std::string("cost/measure/") + row.name;
    benchmark::RegisterBenchmark(
        name.c_str(), [factory = row.factory](benchmark::State& state) {
          const auto plan = workload(4, 64, 42);
          sim::CostParams params;
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                sim::measure_workload(factory, plan, 6, params, 7).cycles);
          }
        });
  }
  return bench::run_benchmarks(argc, argv);
}
