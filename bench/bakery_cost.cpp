// The price of synchronization in a real algorithm: Lamport's Bakery
// under the cost model, across machines and processor counts.
//
// This is the quantitative half of the paper's §5 story.  The DASH
// position was that RC_pc is worth having because labeled operations are
// cheaper than sequentially consistent ones; the paper's counter is that
// RC_pc breaks read/write synchronization algorithms.  The table makes
// the trade concrete: cycles per critical-section entry on sc / rc-sc /
// rc-pc machines (rc-pc is the cheapest — and the §5 result shows what
// that discount actually buys: broken mutual exclusion).
#include "bench_util.hpp"

#include "bakery/bakery.hpp"
#include "simulate/cost_model.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

struct MachineRow {
  const char* name;
  sim::CostFactory factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"rc-sc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_sc_machine(p, l);
       }},
      {"rc-pc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
  };
}

double cycles_per_entry(const MachineRow& row, std::uint32_t n,
                        std::uint64_t lat, std::uint64_t runs) {
  bakery::BakeryLayout layout{n};
  sim::CostParams params;
  params.interconnect = lat;
  params.memory = lat / 5 + 1;
  std::uint64_t cycles = 0, entries = 0;
  for (std::uint64_t r = 0; r < runs; ++r) {
    const auto report = sim::measure_programs(
        row.factory,
        [&](std::uint32_t i) {
          return bakery::bakery_process(layout, i,
                                        bakery::BakeryOptions{1, true});
        },
        n, layout.num_locations(), params, 10 + r);
    cycles += report.cycles;
    entries += n;  // one critical-section entry per process per run
  }
  return static_cast<double>(cycles) / static_cast<double>(entries);
}

void table(std::uint64_t lat, std::uint64_t runs) {
  std::printf("cycles per critical-section entry (interconnect latency "
              "L=%llu, %llu runs)\n",
              static_cast<unsigned long long>(lat),
              static_cast<unsigned long long>(runs));
  std::printf("%-10s", "machine");
  for (std::uint32_t n : {2u, 3u, 4u, 5u}) std::printf("      n=%u", n);
  std::printf("\n");
  for (const auto& row : machines()) {
    std::printf("%-10s", row.name);
    for (std::uint32_t n : {2u, 3u, 4u, 5u}) {
      std::printf(" %8.0f", cycles_per_entry(row, n, lat, runs));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Bakery under the cost model: what RC_pc's weakness buys",
      "labeled ops are free on rc-pc and expensive on sc/rc-sc; the "
      "discount grows with n and interconnect latency — and §5 shows the "
      "price is correctness");
  table(100, 20);
  table(1000, 20);

  benchmark::RegisterBenchmark(
      "bakery_cost/rc-sc/n3", [](benchmark::State& state) {
        const auto rows = machines();
        for (auto _ : state) {
          benchmark::DoNotOptimize(cycles_per_entry(rows[2], 3, 100, 2));
        }
      });
  return bench::run_benchmarks(argc, argv);
}
