// Figure 3 regeneration: the same-location divergence history
//
//     p: w(x)1 r(x)1 r(x)2
//     q: w(x)2 r(x)2 r(x)1
//
// "PRAM thus allows the execution shown in Figure 3, which is not allowed
// by TSO" (paper §3.5), with witness views
//     S_{p+w}: w_p(x)1 r_p(x)1 w_q(x)2 r_p(x)2
//     S_{q+w}: w_q(x)2 r_q(x)2 w_p(x)1 r_q(x)1
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ssm;
  bench::print_banner(
      "Figure 3: PRAM history that is not allowed by TSO",
      "allowed by PRAM (and causal memory); forbidden by TSO, PC, and "
      "cache consistency");
  const auto& t = litmus::find_test("fig3-pram");
  bench::print_test_verdicts(
      t, {"SC", "TSO", "PC", "Causal", "CausalCoh", "Cache", "PRAM"});

  for (const char* model :
       {"SC", "TSO", "PC", "Causal", "CausalCoh", "Cache", "PRAM"}) {
    bench::time_model_on_test("fig3-pram", model);
  }
  return bench::run_benchmarks(argc, argv);
}
