// Read/write mutual-exclusion algorithms vs memory machines: the §5
// result generalized to three classic algorithms.
//
// The paper proves the Bakery case; Peterson and Dekker complete the
// picture (all three rely on store-buffering-free flags, so all three
// fail on every machine weaker than their labeled operations' model).
// Cells: violating runs / total, single-entry, delay-adversary schedule;
// labeled = synchronization accesses labeled (for the RC machines).
#include "bench_util.hpp"

#include "bakery/driver.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace {

using namespace ssm;

struct MachineRow {
  const char* name;
  bakery::MachineFactory factory;
};

std::vector<MachineRow> machines() {
  return {
      {"sc",
       [](std::size_t p, std::size_t l) { return sim::make_sc_machine(p, l); }},
      {"tso",
       [](std::size_t p, std::size_t l) {
         return sim::make_tso_machine(p, l);
       }},
      {"rc-sc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_sc_machine(p, l);
       }},
      {"rc-pc",
       [](std::size_t p, std::size_t l) {
         return sim::make_rc_pc_machine(p, l);
       }},
  };
}

sim::SchedulerOptions adversary(std::uint64_t seed) {
  sim::SchedulerOptions opt;
  opt.policy = sim::Policy::DelayDelivery;
  opt.max_spin = 200;
  opt.max_steps = 200'000;
  opt.seed = seed;
  return opt;
}

void matrix(std::uint64_t runs) {
  std::printf("violating runs / %llu (delay adversary, labeled sync ops)\n",
              static_cast<unsigned long long>(runs));
  std::printf("%-10s %12s %12s %12s\n", "machine", "bakery(n=2)",
              "peterson", "dekker");
  for (const auto& row : machines()) {
    const auto b = bakery::sweep_bakery(row.factory, 2,
                                        bakery::BakeryOptions{1, true},
                                        adversary(50), runs);
    const auto p = bakery::sweep_peterson(
        row.factory, bakery::PetersonOptions{1, true, true}, adversary(51),
        runs);
    const auto d = bakery::sweep_dekker(
        row.factory, bakery::DekkerOptions{1, true, true}, adversary(52),
        runs);
    std::printf("%-10s %12llu %12llu %12llu\n", row.name,
                static_cast<unsigned long long>(b.violating_runs),
                static_cast<unsigned long long>(p.violating_runs),
                static_cast<unsigned long long>(d.violating_runs));
  }
  std::printf(
      "\nreading the table: sc and rc-sc rows must be zero (SC labeled\n"
      "ops suffice for all three algorithms); tso breaks them because the\n"
      "entry protocols are store-buffering shapes; rc-pc breaks them\n"
      "despite the labels — the paper's §5 point, for all three.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Mutual-exclusion algorithms vs memory machines",
      "Bakery / Peterson / Dekker are safe iff their synchronization "
      "accesses are sequentially consistent (paper §5, generalized)");
  matrix(200);

  benchmark::RegisterBenchmark(
      "mutex/peterson/rc-pc", [](benchmark::State& state) {
        std::uint64_t seed = 1;
        for (auto _ : state) {
          const auto run = bakery::run_peterson(
              [](std::size_t p, std::size_t l) {
                return sim::make_rc_pc_machine(p, l);
              },
              bakery::PetersonOptions{1, true, true}, adversary(seed++));
          benchmark::DoNotOptimize(run.violations);
        }
      });
  return bench::run_benchmarks(argc, argv);
}
