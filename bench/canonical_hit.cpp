// Canonicalization effectiveness: cache and dedup hit rates on isomorphic
// clones of the regression corpus.
//
// Not a paper artifact — this measures the PR-5 symmetry layer
// (litmus/canonical.hpp, docs/PERFORMANCE.md).  The workload replays the
// starter corpus through a transport-free CheckService twice: a cold pass
// over the original programs (every cell solves), then a warm pass over
// deterministically permuted/renamed clones of the same programs.  Every
// warm cell must be a cache hit — the clones are different DSL bytes but
// the same isomorphism class, so they canonicalize to the same key and
// their witnesses transport back along the inverse renaming.  The same
// clones are then pushed through litmus::run_suite to measure the
// suite-level isomorphism dedup.
//
// Modes:
//   ./canonical_hit [--corpus DIR] [--clones N] [--json out.json]
//
// JSON record (BENCH_canonical.json trajectory): per-pass wall time,
// cache hit rate over the clone pass (acceptance floor: >= 0.90), suite
// dedup hits, and the global metrics snapshot.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "fuzz/corpus.hpp"
#include "history/system_history.hpp"
#include "litmus/canonical.hpp"
#include "litmus/emit.hpp"
#include "litmus/runner.hpp"
#include "models/registry.hpp"
#include "service/server.hpp"

namespace {

using namespace ssm;

/// Deterministic isomorphic clone #k of `t`: processors rotated by k,
/// locations reverse-permuted, every written value mapped through
/// v -> v + 7 * (k + 1).  Reads follow their writer (SystemHistory::
/// writer_of); reads of the initial value keep 0, which no renamed write
/// collides with.  The result is a different DSL text in the same
/// isomorphism class, so canonicalize() must map it to the same key.
litmus::LitmusTest make_clone(const litmus::LitmusTest& t, std::size_t k) {
  const history::SystemHistory& h = t.hist;
  const std::size_t procs = h.num_processors();
  const std::size_t locs = h.num_locations();
  const auto new_proc = [&](ProcId p) {
    return static_cast<ProcId>((p + k + 1) % procs);
  };
  const auto new_loc = [&](LocId l) {
    return static_cast<LocId>(locs - 1 - l);
  };
  const Value offset = static_cast<Value>(7 * (k + 1));
  const auto new_value = [&](Value v) { return static_cast<Value>(v + offset); };

  history::SymbolTable symbols;
  for (std::size_t p = 0; p < procs; ++p) {
    symbols.intern_processor("q" + std::to_string(p));
  }
  for (std::size_t l = 0; l < locs; ++l) {
    symbols.intern_location("y" + std::to_string(l));
  }
  litmus::LitmusTest out;
  out.name = t.name + "_clone" + std::to_string(k);
  out.hist = history::SystemHistory(std::move(symbols));
  // Emit processor sequences in the clone's processor order so the DSL
  // lines move too, not just the names.
  for (std::size_t pos = 0; pos < procs; ++pos) {
    for (ProcId orig = 0; orig < procs; ++orig) {
      if (new_proc(orig) != static_cast<ProcId>(pos)) continue;
      for (OpIndex i : h.processor_ops(orig)) {
        const history::Operation& src = h.op(i);
        history::Operation op;
        op.kind = src.kind;
        op.label = src.label;
        op.proc = static_cast<ProcId>(pos);
        op.loc = new_loc(src.loc);
        const auto read_value = [&]() {
          return h.writer_of(i) == kNoOp ? kInitialValue
                                         : new_value(src.read_value());
        };
        if (src.kind == OpKind::ReadModifyWrite) {
          op.value = new_value(src.value);
          op.rmw_read = read_value();
        } else if (src.is_write()) {
          op.value = new_value(src.value);
        } else {
          op.value = read_value();
        }
        out.hist.append(op);
      }
    }
  }
  return out;
}

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir = "../tests/litmus/corpus";
  std::size_t clones = 3;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--clones") == 0 && i + 1 < argc) {
      clones = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: canonical_hit [--corpus DIR] [--clones N] "
                           "[--json out.json]\n");
      return 64;
    }
  }

  std::vector<litmus::LitmusTest> corpus;
  try {
    corpus = fuzz::load_corpus(corpus_dir);
  } catch (const InvalidInput& e) {
    std::fprintf(stderr, "canonical_hit: %s\n", e.what());
    return 1;
  }
  common::metrics::Registry::global().reset();

  // --- Service passes: cold originals, then warm isomorphic clones. ---
  service::CheckService svc(service::CheckService::Options{});
  service::CheckRequest req;

  const auto cold0 = std::chrono::steady_clock::now();
  std::uint64_t cold_cells = 0;
  for (const auto& t : corpus) {
    req.program = litmus::emit(t);
    cold_cells += svc.handle_check(req).results.size();
  }
  const double cold_s = wall_since(cold0);

  const auto warm0 = std::chrono::steady_clock::now();
  std::uint64_t warm_cells = 0, warm_hits = 0;
  for (std::size_t k = 0; k < clones; ++k) {
    for (const auto& t : corpus) {
      const litmus::LitmusTest clone = make_clone(t, k);
      req.program = litmus::emit(clone);
      const auto resp = svc.handle_check(req);
      warm_cells += resp.results.size();
      warm_hits += resp.cache_hits;
    }
  }
  const double warm_s = wall_since(warm0);
  const double hit_rate =
      warm_cells == 0 ? 0.0
                      : static_cast<double>(warm_hits) /
                            static_cast<double>(warm_cells);

  // --- Suite pass: originals + clones through run_suite's dedup. ---
  std::vector<litmus::LitmusTest> suite;
  for (const auto& t : corpus) {
    suite.push_back(t);
    for (std::size_t k = 0; k < clones; ++k) {
      suite.push_back(make_clone(t, k));
    }
  }
  common::ThreadPool::set_global_jobs(1);
  const auto models = models::paper_models();
  const auto suite0 = std::chrono::steady_clock::now();
  const auto outcomes = litmus::run_suite(suite, models, {});
  const double suite_s = wall_since(suite0);
  std::uint64_t suite_cells = 0;
  for (const auto& o : outcomes) suite_cells += o.per_model.size();
  const std::uint64_t dedup_hits =
      common::metrics::Registry::global()
          .counter("suite.iso_dedup_hits")
          .value();
  const double dedup_rate =
      suite_cells == 0 ? 0.0
                       : static_cast<double>(dedup_hits) /
                             static_cast<double>(suite_cells);

  std::printf("canonical_hit: %zu corpus tests x %zu clones\n", corpus.size(),
              clones);
  std::printf("cold pass:  %llu cells in %.3fs (all solved)\n",
              static_cast<unsigned long long>(cold_cells), cold_s);
  std::printf("warm pass:  %llu cells in %.3fs, %llu cache hits "
              "(hit rate %.3f)\n",
              static_cast<unsigned long long>(warm_cells), warm_s,
              static_cast<unsigned long long>(warm_hits), hit_rate);
  std::printf("suite pass: %llu cells in %.3fs, %llu replayed by iso-dedup "
              "(rate %.3f)\n",
              static_cast<unsigned long long>(suite_cells), suite_s,
              static_cast<unsigned long long>(dedup_hits), dedup_rate);

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char buf[1024];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"benchmark\": \"canonical_hit\",\n"
                  "  \"corpus_tests\": %zu,\n"
                  "  \"clones_per_test\": %zu,\n"
                  "  \"cold_cells\": %llu,\n"
                  "  \"cold_wall_seconds\": %.6f,\n"
                  "  \"warm_cells\": %llu,\n"
                  "  \"warm_wall_seconds\": %.6f,\n"
                  "  \"warm_cache_hits\": %llu,\n"
                  "  \"warm_hit_rate\": %.4f,\n"
                  "  \"suite_cells\": %llu,\n"
                  "  \"suite_wall_seconds\": %.6f,\n"
                  "  \"suite_iso_dedup_hits\": %llu,\n"
                  "  \"suite_dedup_rate\": %.4f,\n"
                  "  ",
                  corpus.size(), clones,
                  static_cast<unsigned long long>(cold_cells), cold_s,
                  static_cast<unsigned long long>(warm_cells), warm_s,
                  static_cast<unsigned long long>(warm_hits), hit_rate,
                  static_cast<unsigned long long>(suite_cells), suite_s,
                  static_cast<unsigned long long>(dedup_hits), dedup_rate);
    std::string snapshot;
    common::metrics::append_global_snapshot(snapshot);
    out << buf << snapshot << "\n}\n";
  }
  // The warm pass is the whole point: a sub-90% hit rate means the
  // canonicalization missed an isomorphism it is specified to catch.
  return hit_rate >= 0.90 ? 0 : 1;
}
