#!/bin/sh
# Cluster smoke test (ctest: cli_cluster_smoke, labels
# `cluster;service;concurrency`).
#
# Starts three `ssm serve` nodes and one `ssm route` front-end with warm
# shipping from the corpus, then asserts the scale-out contract end to
# end through the real binaries:
#
#   1. a warm pass through the router with --expect-cached exits 0 for
#      every corpus entry (shipping + canonical-key routing worked: each
#      program's home node already holds its verdicts);
#   2. the router's verdict bytes are identical to a single node's for
#      the same workload, once `source`/`meta` (which legitimately
#      differ) are stripped;
#   3. SIGKILL of one node mid-load is absorbed: every in-flight client
#      run still exits 0 — zero failed requests;
#   4. protocol shutdown drains the router cleanly (exit 0, drain line
#      logged); the surviving nodes drain cleanly afterwards.
#
# usage: cluster_smoke.sh <ssm-binary> <corpus-dir>
set -eu

SSM="$1"
CORPUS="$2"

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssm-cluster-smoke-XXXXXX")
# Kill whatever is still running on ANY exit path: a failure that leaves
# a child alive would keep ctest's output pipe open until its timeout.
PIDS=""
trap 'kill $PIDS 2> /dev/null || true; rm -rf "$TMP"' EXIT

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: socket $1 never appeared" >&2
      cat "$TMP"/*.log >&2
      exit 1
    fi
    sleep 0.1
  done
}

# --- the cluster: three nodes + a router shipping the corpus -----------
"$SSM" serve --socket "$TMP/n1" --node-id n1 2> "$TMP/n1.log" &
N1_PID=$!
"$SSM" serve --socket "$TMP/n2" --node-id n2 2> "$TMP/n2.log" &
N2_PID=$!
"$SSM" serve --socket "$TMP/n3" --node-id n3 2> "$TMP/n3.log" &
N3_PID=$!
PIDS="$N1_PID $N2_PID $N3_PID"
wait_for_socket "$TMP/n1"
wait_for_socket "$TMP/n2"
wait_for_socket "$TMP/n3"

# The router's startup probe round runs BEFORE it binds, so once its
# socket exists every live node has been probed and shipped its slice.
"$SSM" route --socket "$TMP/r" \
  --node "unix:$TMP/n1" --node "unix:$TMP/n2" --node "unix:$TMP/n3" \
  --ship-corpus "$CORPUS" --probe-ms 50 --backoff-ms 2 \
  2> "$TMP/route.log" &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_for_socket "$TMP/r"
# A node that is slow to start (sanitizer builds) misses the router's
# startup probe and comes up via the health thread moments later, so
# poll for three "node up" transitions instead of grepping the one-shot
# "3/3 nodes up" listening line.
i=0
while [ "$(grep -c "node up" "$TMP/route.log")" -lt 3 ]; do
  i=$((i + 1))
  if [ "$i" -gt 300 ]; then
    echo "FAIL: router did not report all nodes up" >&2
    cat "$TMP/route.log" >&2
    exit 1
  fi
  sleep 0.1
done

# --- 1. warm pass: every entry already cached on its home node ---------
for f in "$CORPUS"/*.litmus; do
  "$SSM" client --socket "$TMP/r" check "$f" --expect-cached \
    > /dev/null || {
    echo "FAIL: $f not served from cache through the router" >&2
    exit 1
  }
done

# --- 2. verdict bytes identical to a single node -----------------------
# `source` differs by design (cache vs solved) and `meta` carries
# node-local latency; everything else must match byte for byte.
strip_variable_fields() {
  sed -e 's/, "source": "[a-z]*"//g' -e 's/, "meta": {[^}]*}//'
}
cat "$CORPUS"/*.litmus > "$TMP/all.litmus"
"$SSM" serve --socket "$TMP/solo" 2> "$TMP/solo.log" &
SOLO_PID=$!
PIDS="$PIDS $SOLO_PID"
wait_for_socket "$TMP/solo"
"$SSM" client --socket "$TMP/solo" check "$TMP/all.litmus" \
  | strip_variable_fields > "$TMP/solo.out"
"$SSM" client --socket "$TMP/solo" shutdown > /dev/null
wait "$SOLO_PID"
"$SSM" client --socket "$TMP/r" check "$TMP/all.litmus" \
  | strip_variable_fields > "$TMP/routed.out"
cmp "$TMP/solo.out" "$TMP/routed.out" || {
  echo "FAIL: routed verdict bytes differ from the single-node run" >&2
  exit 1
}

# --- 3. SIGKILL one node mid-load: zero failed requests ----------------
: > "$TMP/failures"
(
  for i in $(seq 1 20); do
    "$SSM" client --socket "$TMP/r" check "$TMP/all.litmus" > /dev/null \
      || echo "run $i failed" >> "$TMP/failures"
  done
) &
LOAD_PID=$!
sleep 0.2
kill -9 "$N2_PID"
wait "$LOAD_PID"
if [ -s "$TMP/failures" ]; then
  echo "FAIL: client-visible failures during the mid-load kill:" >&2
  cat "$TMP/failures" >&2
  cat "$TMP/route.log" >&2
  exit 1
fi
# The survivors still answer — and still byte-identically.  (This also
# touches the dead node's slice, forcing the failover if the load loop
# happened to finish before the kill landed.)
"$SSM" client --socket "$TMP/r" check "$TMP/all.litmus" \
  | strip_variable_fields > "$TMP/after_kill.out"
cmp "$TMP/solo.out" "$TMP/after_kill.out" || {
  echo "FAIL: verdict bytes changed after failover" >&2
  exit 1
}
# The detection log line trails the kill by up to one probe interval;
# poll rather than racing it.
i=0
while ! grep -q "node down" "$TMP/route.log"; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: router never noticed the killed node" >&2
    cat "$TMP/route.log" >&2
    exit 1
  fi
  sleep 0.1
done

# --- 4. clean drains ---------------------------------------------------
"$SSM" client --socket "$TMP/r" shutdown > /dev/null
if ! wait "$ROUTER_PID"; then
  echo "FAIL: router exited non-zero" >&2
  cat "$TMP/route.log" >&2
  exit 1
fi
grep -q "drained, exiting" "$TMP/route.log" || {
  echo "FAIL: no drain line in the router log" >&2
  cat "$TMP/route.log" >&2
  exit 1
}
"$SSM" client --socket "$TMP/n1" shutdown > /dev/null
"$SSM" client --socket "$TMP/n3" shutdown > /dev/null
wait "$N1_PID" && wait "$N3_PID" || {
  echo "FAIL: a node exited non-zero on drain" >&2
  exit 1
}
wait "$N2_PID" 2> /dev/null || true  # the SIGKILLed one

echo "cluster smoke OK"
