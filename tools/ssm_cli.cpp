// ssm — command-line front end for the shared-memory characterization
// library.
//
//   ssm models                      list models with descriptions
//   ssm tests                       list built-in litmus tests
//   ssm check <model> [file]        check tests against one model
//   ssm show <test> [model...]      print witnesses for a built-in test
//   ssm matrix [file]               classification matrix (all models)
//   ssm lattice [procs ops locs]    empirical containment report
//   ssm bakery <machine> [n]        run Bakery on a machine (sc, tso,
//                                   rc-sc, rc-pc), adversarial schedule
//   ssm explain <test>              print the derived orders (po, ppo,
//                                   wb, co) edge by edge, plus races
//   ssm dot <test>                  Graphviz rendering of the history
//                                   with po/wb layers (pipe to `dot -Tpng`)
//   ssm separate <A> <B>            search for a history in A \ B
//   ssm identify <machine>          match a machine against every
//                                   declarative model over an exhaustive
//                                   universe (agreement, sound, complete)
//   ssm fuzz [--seed S --iters N ...]
//                                   differential fuzzing over all models:
//                                   random histories, lattice/witness/
//                                   operational oracles, shrunk findings
//                                   (docs/FUZZING.md)
//   ssm replay <dir>                replay a .litmus regression corpus
//                                   against recorded expectations
//   ssm serve [--socket P | --tcp [PORT]] [--cache-dir D] [--preload D] ...
//                                   long-running check server: NDJSON
//                                   protocol, verdict cache, single-flight
//                                   dedup, bounded admission queue,
//                                   graceful drain (docs/SERVICE.md)
//   ssm client (--socket P | --tcp PORT) <op> ...
//                                   one-shot client: check <file>
//                                   [model...], trace [file], stats, ping,
//                                   shutdown
//   ssm trace gen [--machine M --ops N --seed S ...]
//                                   seeded trace generation: run a
//                                   simulated machine under an adversarial
//                                   scheduler, stream trace-format NDJSON
//                                   (byte-identical per seed,
//                                   docs/TRACES.md)
//   ssm trace check [file] [--model M --window W]
//                                   streaming bounded-memory check: one
//                                   verdict line per window plus a digest
//                                   summary (docs/TRACES.md)
//
// Files use the litmus DSL (see src/litmus/parser.hpp).
//
// Global options:
//   --jobs N          checking-engine thread-pool width (or SSM_JOBS);
//                     verdicts and matrices are byte-identical across
//                     settings (see docs/PARALLELISM.md)
//   --max-nodes N     cap search nodes per admission check; exhausted
//                     checks report INCONCLUSIVE (docs/OBSERVABILITY.md)
//   --timeout-ms N    wall-clock cap per admission check, same semantics
//   --json            machine-readable output for check/matrix: witness
//                     certificates (independently re-verified before
//                     emission) plus a metrics snapshot
#include <csignal>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "bakery/driver.hpp"
#include "checker/budget.hpp"
#include "checker/verdict.hpp"
#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "history/dot.hpp"
#include "history/print.hpp"
#include "lattice/separate.hpp"
#include "models/operational.hpp"
#include "order/orders.hpp"
#include "race/race.hpp"
#include "lattice/inclusion.hpp"
#include "solve/portfolio.hpp"
#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "litmus/suite.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "models/registry.hpp"
#include "cluster/router.hpp"
#include "litmus/emit.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"
#include "trace/format.hpp"
#include "trace/streaming.hpp"
#include "trace/trace_export.hpp"

namespace {

using namespace ssm;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: ssm [--jobs N] [--max-nodes N] [--timeout-ms N] [--json] "
      "<command> [args]\n"
      "commands:\n"
      "  models | tests | check <model> [file] | show <test> [model...]\n"
      "  matrix [file] | lattice [procs ops locs] | bakery <machine> [n]\n"
      "  explain <test> | dot <test> | separate <A> <B> | identify "
      "<machine>\n"
      "  fuzz [--seed S] [--iters N] [--procs P] [--ops O] [--locs L]\n"
      "       [--labels PCT] [--corpus DIR] [--inject-bug MODEL]\n"
      "       [--op-ops N] [--no-operational] [--no-backend-diff]\n"
      "       [--no-shrink]\n"
      "                  differential fuzzing over all models "
      "(docs/FUZZING.md)\n"
      "  replay <dir>    replay a .litmus regression corpus against its\n"
      "                  recorded expectations\n"
      "  serve [--socket PATH | --tcp [PORT]] [--cache-dir DIR]\n"
      "        [--cache-capacity N] [--queue N] [--workers N]\n"
      "        [--io-threads N] [--preload DIR] [--node-id ID]\n"
      "                  long-running check server: epoll event loop,\n"
      "                  NDJSON protocol (pipelining + batch frames) over a\n"
      "                  unix or 127.0.0.1 TCP socket, verdict cache,\n"
      "                  single-flight dedup, bounded admission queue,\n"
      "                  graceful drain on SIGINT/SIGTERM "
      "(docs/SERVICE.md)\n"
      "  route (--socket PATH | --tcp [PORT]) --node SPEC [--node SPEC...]\n"
      "        [--vnodes N] [--retries N] [--backoff-ms N]\n"
      "        [--backoff-cap-ms N] [--probe-ms N] [--connect-timeout-ms N]\n"
      "        [--io-timeout-ms N] [--ship-dir DIR] [--ship-corpus DIR]\n"
      "        [--router-id ID]\n"
      "                  cluster front-end: consistent-hash routing of the\n"
      "                  NDJSON protocol across `ssm serve` nodes (SPEC is\n"
      "                  unix:PATH or HOST:PORT), with health probes,\n"
      "                  retry/backoff, failover, and warm-cache shipping\n"
      "                  (docs/CLUSTER.md)\n"
      "  client (--socket PATH | --tcp PORT) [--host HOST]\n"
      "         [--connect-timeout-ms N] [--io-timeout-ms N] <op> [args]\n"
      "                  ops: check <file> [model...] [--no-cache]\n"
      "                       [--expect-cached] [--pipeline N] |\n"
      "                       trace [file] [--model M] [--window N]\n"
      "                       [--chunk N] | stats | ping | shutdown\n"
      "  trace gen [--machine sc|tso|rc-sc|rc-pc] [--scenario "
      "workload|bakery]\n"
      "            [--ops N] [--seed S] [--procs P] [--locs L]\n"
      "            [--write-percent PCT] [--sync-locs K] [-o FILE]\n"
      "                  seeded, byte-identical trace-format NDJSON from a\n"
      "                  simulated machine under an adversarial scheduler\n"
      "  trace check [file] [--model M] [--window N] [--ring N]\n"
      "                  streaming bounded-memory check (stdin default):\n"
      "                  one verdict line per window, then a summary with\n"
      "                  the verdict-stream digest (docs/TRACES.md)\n"
      "global options:\n"
      "  --jobs N        checking-engine threads (default: SSM_JOBS or all "
      "cores)\n"
      "  --max-nodes N   search-node budget per check (0 = unlimited);\n"
      "                  for serve: the server-side cap\n"
      "  --timeout-ms N  wall-clock budget per check (0 = unlimited);\n"
      "                  for serve: the server-side cap\n"
      "  --backend B     decision backend: search (enumerating, default),\n"
      "                  encode (SAT), race (both; first definite verdict\n"
      "                  wins — docs/PORTFOLIO.md)\n"
      "  --json          machine-readable check/matrix/fuzz output with\n"
      "                  witness certificates and a metrics snapshot\n"
      "  --help          print this help and exit 0\n");
}

int usage() {
  print_usage(stderr);
  return 64;
}

/// Parses a decimal unsigned integer or dies with a diagnostic naming the
/// offending token — never silently reads garbage the way atoi would.
std::uint64_t parse_u64(const char* what, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (text[0] == '\0' || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    std::fprintf(stderr, "ssm: bad %s '%s' (expected unsigned integer)\n",
                 what, text);
    std::exit(64);
  }
  return static_cast<std::uint64_t>(v);
}

std::uint32_t parse_u32(const char* what, const char* text) {
  const std::uint64_t v = parse_u64(what, text);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr, "ssm: bad %s '%s' (out of range)\n", what, text);
    std::exit(64);
  }
  return static_cast<std::uint32_t>(v);
}

/// Options shared by every command, stripped from argv before dispatch.
struct GlobalOptions {
  checker::BudgetSpec budget;  ///< per-admission-check budget
  bool json = false;           ///< machine-readable output where supported
  /// Decision backend for check/matrix/show (and forwarded by `client`):
  /// the enumerating search, the SAT encoding, or a race of both
  /// (docs/PORTFOLIO.md).
  checker::Backend backend = checker::Backend::Search;
};

/// Strips global flags (`--jobs N`, `--max-nodes N`, `--timeout-ms N`,
/// `--json`, with `=value` forms) from argv, anywhere on the line.
/// Returns false on a malformed flag (caller prints usage).
bool apply_global_flags(int& argc, char** argv, GlobalOptions& opts) {
  int out = 1;
  unsigned jobs = 0;
  bool jobs_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> const char* {
      const std::string eq = std::string(flag) + '=';
      if (arg == flag) {
        if (i + 1 >= argc) return nullptr;
        return argv[++i];
      }
      if (arg.rfind(eq, 0) == 0) return argv[i] + eq.size();
      return nullptr;
    };
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--jobs" || arg == "-j" ||
               arg.rfind("--jobs=", 0) == 0) {
      const char* v = value_of(arg == "-j" ? "-j" : "--jobs");
      if (v == nullptr) return false;
      const std::uint32_t n = parse_u32("--jobs value", v);
      if (n == 0) return false;
      jobs = n;
      jobs_set = true;
    } else if (arg == "--max-nodes" || arg.rfind("--max-nodes=", 0) == 0) {
      const char* v = value_of("--max-nodes");
      if (v == nullptr) return false;
      opts.budget.max_nodes = parse_u64("--max-nodes value", v);
    } else if (arg == "--timeout-ms" || arg.rfind("--timeout-ms=", 0) == 0) {
      const char* v = value_of("--timeout-ms");
      if (v == nullptr) return false;
      opts.budget.timeout_ms = parse_u64("--timeout-ms value", v);
    } else if (arg == "--backend" || arg.rfind("--backend=", 0) == 0) {
      const char* v = value_of("--backend");
      if (v == nullptr) return false;
      const auto b = checker::backend_from_string(v);
      if (!b) {
        std::fprintf(stderr,
                     "ssm: bad --backend '%s' (search|encode|race)\n", v);
        return false;
      }
      opts.backend = *b;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (jobs_set) common::ThreadPool::set_global_jobs(jobs);
  return true;
}

void append_json_escaped(std::string& out, std::string_view s) {
  common::json::escape(out, s);  // shared with the service wire protocol
}

std::vector<litmus::LitmusTest> load_suite(int argc, char** argv, int pos) {
  if (pos >= argc) return litmus::builtin_suite();
  std::ifstream in(argv[pos]);
  if (!in) throw InvalidInput(std::string("cannot open ") + argv[pos]);
  std::ostringstream text;
  text << in.rdbuf();
  return litmus::parse_suite(text.str());
}

int cmd_models() {
  for (const auto& m : models::all_models()) {
    std::printf("%-10s %s\n", std::string(m->name()).c_str(),
                std::string(m->description()).c_str());
  }
  return 0;
}

int cmd_tests() {
  for (const auto& t : litmus::builtin_suite()) {
    std::printf("%-20s %s\n", t.name.c_str(), t.origin.c_str());
  }
  return 0;
}

/// Runs one admission check with the selected backend under a fresh budget
/// from `opts` (ambient for the model and forwarded across the
/// per-processor fan-out).
checker::Verdict check_budgeted(const models::Model& m,
                                const history::SystemHistory& h,
                                const GlobalOptions& opts) {
  if (opts.backend != checker::Backend::Search) {
    return checker::Portfolio::check(h, m.name(), opts.backend, opts.budget);
  }
  if (opts.budget.unlimited()) return m.check(h);
  checker::SearchBudget budget(opts.budget);
  const checker::BudgetScope scope(&budget);
  return m.check(h);
}

int cmd_check(int argc, char** argv, const GlobalOptions& opts) {
  if (argc < 3) return usage();
  const auto model = models::make_model(argv[2]);
  const auto suite = load_suite(argc, argv, 3);
  int failures = 0;
  std::string json = "{\n  \"model\": \"";
  append_json_escaped(json, model->name());
  json += "\",\n  \"results\": [";
  bool first = true;
  for (const auto& t : suite) {
    const auto verdict = check_budgeted(*model, t.hist, opts);
    const auto expected = t.expectation(model->name());
    // An INCONCLUSIVE cell contradicts nothing — it is a resource
    // statement, not a classification.
    const bool mismatch = !verdict.inconclusive && expected.has_value() &&
                          *expected != verdict.allowed;
    failures += mismatch ? 1 : 0;
    const char* status = verdict.inconclusive
                             ? "inconclusive"
                             : (verdict.allowed ? "allowed" : "forbidden");
    if (!opts.json) {
      std::printf("%-20s %-12s%s\n", t.name.c_str(), status,
                  mismatch ? "  (MISMATCH vs expectation)" : "");
      continue;
    }
    json += first ? "\n    {" : ",\n    {";
    first = false;
    json += "\"test\": \"";
    append_json_escaped(json, t.name);
    json += "\", \"verdict\": \"";
    json += status;
    json += '"';
    if (verdict.inconclusive && !verdict.note.empty()) {
      json += ", \"note\": \"";
      append_json_escaped(json, verdict.note);
      json += '"';
    }
    if (verdict.allowed && !verdict.inconclusive) {
      // Emit the certificate only after the independent verifier accepts
      // it: a witness that fails re-verification is a checker bug, and
      // shipping it would defeat the point of certification.
      const auto w = checker::witness_from_verdict(t.hist, model->name(),
                                                   verdict);
      if (const auto err = checker::verify_witness(t.hist, w)) {
        std::fprintf(stderr,
                     "ssm: witness for test '%s' failed independent "
                     "re-verification: %s\n",
                     t.name.c_str(), err->c_str());
        return 3;
      }
      json += ", \"witness\": ";
      json += checker::to_json(w);
    }
    json += '}';
  }
  if (opts.json) {
    json += "\n  ],\n  ";
    common::metrics::append_global_snapshot(json);
    json += "\n}\n";
    std::printf("%s", json.c_str());
  }
  return failures == 0 ? 0 : 2;
}

int cmd_show(int argc, char** argv, const GlobalOptions& opts) {
  if (argc < 3) return usage();
  const auto& t = litmus::find_test(argv[2]);
  std::printf("%s\n", litmus::to_dsl(t).c_str());
  std::vector<models::ModelPtr> targets;
  if (argc > 3) {
    for (int i = 3; i < argc; ++i) {
      targets.push_back(models::make_model(argv[i]));
    }
  } else {
    targets = models::all_models();
  }
  for (const auto& m : targets) {
    const auto v = check_budgeted(*m, t.hist, opts);
    std::printf("%-10s %s", std::string(m->name()).c_str(),
                checker::format_verdict(t.hist, v).c_str());
  }
  return 0;
}

int cmd_matrix(int argc, char** argv, const GlobalOptions& opts) {
  const auto suite = load_suite(argc, argv, 2);
  const auto outcomes =
      litmus::run_suite(suite, models::all_models(),
                        litmus::RunOptions{opts.budget, opts.backend});
  if (opts.json) {
    std::string json = "{\n  \"tests\": [";
    bool first_test = true;
    for (const auto& o : outcomes) {
      json += first_test ? "\n    {" : ",\n    {";
      first_test = false;
      json += "\"test\": \"";
      append_json_escaped(json, o.test);
      json += "\", \"cells\": {";
      bool first_cell = true;
      for (const auto& m : o.per_model) {
        if (!first_cell) json += ", ";
        first_cell = false;
        json += '"';
        append_json_escaped(json, m.model);
        json += "\": \"";
        json += m.inconclusive ? "inconclusive"
                               : (m.allowed ? "allowed" : "forbidden");
        json += '"';
      }
      json += "}}";
    }
    json += "\n  ],\n  ";
    common::metrics::append_global_snapshot(json);
    json += "\n}\n";
    std::printf("%s", json.c_str());
  } else {
    std::printf("%s", litmus::format_matrix(outcomes).c_str());
  }
  for (const auto& o : outcomes) {
    if (!o.all_match()) return 2;
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv, const GlobalOptions& opts) {
  fuzz::FuzzOptions fopts;
  fopts.oracle.budget = opts.budget;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      fopts.seed = parse_u64("--seed value", value());
    } else if (arg == "--iters") {
      fopts.iters = parse_u64("--iters value", value());
    } else if (arg == "--procs") {
      const std::uint32_t n = parse_u32("--procs value", value());
      if (n == 0) return usage();
      fopts.gen.min_procs = std::min(fopts.gen.min_procs, n);
      fopts.gen.max_procs = n;
    } else if (arg == "--ops") {
      const std::uint32_t n = parse_u32("--ops value", value());
      if (n == 0) return usage();
      fopts.gen.min_ops = std::min(fopts.gen.min_ops, n);
      fopts.gen.max_ops = n;
    } else if (arg == "--locs") {
      const std::uint32_t n = parse_u32("--locs value", value());
      if (n == 0) return usage();
      fopts.gen.locs = n;
    } else if (arg == "--labels") {
      fopts.gen.label_percent = parse_u32("--labels value", value());
    } else if (arg == "--corpus") {
      fopts.corpus_dir = value();
    } else if (arg == "--inject-bug") {
      fopts.inject_bug_into = value();
    } else if (arg == "--op-ops") {
      fopts.oracle.max_operational_ops = parse_u32("--op-ops value", value());
    } else if (arg == "--no-operational") {
      fopts.oracle.check_operational = false;
    } else if (arg == "--no-backend-diff") {
      fopts.oracle.check_backends = false;
    } else if (arg == "--no-shrink") {
      fopts.shrink = false;
    } else {
      return usage();
    }
  }
  const auto report = fuzz::run_fuzz(fopts);
  if (opts.json) {
    std::string json = report.to_json();
    json.erase(json.rfind("\n}"));  // reopen for the metrics snapshot
    json += ",\n  ";
    common::metrics::append_global_snapshot(json);
    json += "\n}\n";
    std::printf("%s", json.c_str());
  } else {
    std::printf("%s", report.format().c_str());
  }
  return report.clean() ? 0 : 2;
}

int cmd_replay(int argc, char** argv, const GlobalOptions& opts) {
  if (argc < 3) return usage();
  const auto result =
      fuzz::replay_corpus(argv[2], models::all_models(), opts.budget);
  for (const auto& f : result.failures) {
    std::printf("FAIL %-24s %s\n", f.test.c_str(), f.detail.c_str());
  }
  std::printf("replay: %llu tests, %llu cells, %zu failures\n",
              static_cast<unsigned long long>(result.tests),
              static_cast<unsigned long long>(result.cells),
              result.failures.size());
  return result.ok() ? 0 : 2;
}

/// The serve loop's drain hook.  SIGINT/SIGTERM must interrupt a blocked
/// wait() with nothing but async-signal-safe calls; Server::begin_drain is
/// exactly that (one atomic exchange + one pipe write).
service::Server* g_serving = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_serving != nullptr) g_serving->begin_drain();
}

int cmd_serve(int argc, char** argv, const GlobalOptions& opts) {
  service::ServerOptions sopts;
  sopts.service.default_budget = opts.budget;
  std::string preload_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      sopts.unix_socket = value();
    } else if (arg == "--tcp") {
      sopts.use_tcp = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        sopts.tcp_port =
            static_cast<std::uint16_t>(parse_u32("--tcp port", argv[++i]));
      }
    } else if (arg == "--cache-dir") {
      sopts.service.cache.dir = value();
    } else if (arg == "--cache-capacity") {
      sopts.service.cache.capacity = parse_u64("--cache-capacity value",
                                               value());
    } else if (arg == "--queue") {
      sopts.queue_capacity = parse_u64("--queue value", value());
      if (sopts.queue_capacity == 0) {
        // A zero-slot queue would reject every check as overloaded.
        std::fprintf(stderr, "ssm serve: --queue must be >= 1\n");
        return 64;
      }
    } else if (arg == "--workers") {
      sopts.workers = parse_u32("--workers value", value());
    } else if (arg == "--io-threads") {
      sopts.io_threads = parse_u32("--io-threads value", value());
      if (sopts.io_threads == 0) {
        std::fprintf(stderr, "ssm serve: --io-threads must be >= 1\n");
        return 64;
      }
    } else if (arg == "--preload") {
      preload_dir = value();
    } else if (arg == "--node-id") {
      sopts.node_id = value();
    } else {
      return usage();
    }
  }
  if (!sopts.use_tcp && sopts.unix_socket.empty()) {
    std::fprintf(stderr, "ssm serve: need --socket PATH or --tcp [PORT]\n");
    return 64;
  }
  service::Server server(sopts);
  if (!sopts.service.cache.dir.empty()) {
    const auto report = server.service().cache().load_persistent();
    std::fprintf(stderr,
                 "ssm serve: persistent cache: %zu loaded, %zu skipped "
                 "(%zu stale-version)\n",
                 report.loaded, report.skipped, report.stale_version);
  }
  if (!preload_dir.empty()) {
    const auto report = server.service().preload(preload_dir);
    std::fprintf(
        stderr,
        "ssm serve: preload %s: %zu files, %zu cells loaded, %zu skipped\n",
        preload_dir.c_str(), report.files, report.loaded, report.skipped);
  }
  server.start();
  if (sopts.use_tcp) {
    std::fprintf(stderr, "ssm serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
  } else {
    std::fprintf(stderr, "ssm serve: listening on %s\n",
                 sopts.unix_socket.c_str());
  }
  g_serving = &server;
  struct sigaction sa{};
  sa.sa_handler = handle_drain_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  server.wait();
  g_serving = nullptr;
  std::fprintf(stderr, "ssm serve: drained, exiting\n");
  return 0;
}

/// The route loop's drain hook, same contract as the serve one:
/// Router::begin_drain is an atomic exchange plus a shutdown() on the
/// listen fd — async-signal-safe.
cluster::Router* g_routing = nullptr;

extern "C" void handle_route_drain_signal(int) {
  if (g_routing != nullptr) g_routing->begin_drain();
}

int cmd_route(int argc, char** argv, const GlobalOptions& opts) {
  (void)opts;
  cluster::RouterOptions ropts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      ropts.unix_socket = value();
    } else if (arg == "--tcp") {
      ropts.use_tcp = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        ropts.tcp_port =
            static_cast<std::uint16_t>(parse_u32("--tcp port", argv[++i]));
      }
    } else if (arg == "--node") {
      ropts.nodes.emplace_back(value());
    } else if (arg == "--vnodes") {
      ropts.vnodes = parse_u32("--vnodes value", value());
      if (ropts.vnodes == 0) {
        std::fprintf(stderr, "ssm route: --vnodes must be >= 1\n");
        return 64;
      }
    } else if (arg == "--retries") {
      ropts.max_attempts = parse_u32("--retries value", value());
      if (ropts.max_attempts == 0) {
        std::fprintf(stderr, "ssm route: --retries must be >= 1\n");
        return 64;
      }
    } else if (arg == "--backoff-ms") {
      ropts.backoff_base_ms = parse_u32("--backoff-ms value", value());
    } else if (arg == "--backoff-cap-ms") {
      ropts.backoff_cap_ms = parse_u32("--backoff-cap-ms value", value());
    } else if (arg == "--probe-ms") {
      ropts.probe_interval_ms = parse_u32("--probe-ms value", value());
      if (ropts.probe_interval_ms == 0) {
        std::fprintf(stderr, "ssm route: --probe-ms must be >= 1\n");
        return 64;
      }
    } else if (arg == "--connect-timeout-ms") {
      ropts.connect_timeout_ms =
          parse_u32("--connect-timeout-ms value", value());
    } else if (arg == "--io-timeout-ms") {
      ropts.io_timeout_ms = parse_u32("--io-timeout-ms value", value());
    } else if (arg == "--ship-dir") {
      ropts.ship_dir = value();
    } else if (arg == "--ship-corpus") {
      ropts.ship_corpus = value();
    } else if (arg == "--router-id") {
      ropts.router_id = value();
    } else {
      return usage();
    }
  }
  if (!ropts.use_tcp && ropts.unix_socket.empty()) {
    std::fprintf(stderr, "ssm route: need --socket PATH or --tcp [PORT]\n");
    return 64;
  }
  if (ropts.nodes.empty()) {
    std::fprintf(stderr, "ssm route: need at least one --node SPEC\n");
    return 64;
  }
  // Fail fast on malformed specs (exit 64) before binding anything.
  for (const std::string& spec : ropts.nodes) {
    try {
      (void)cluster::NodeAddress::parse(spec);
    } catch (const InvalidInput& e) {
      std::fprintf(stderr, "ssm route: %s\n", e.what());
      return 64;
    }
  }
  cluster::Router router(ropts);
  router.start();
  if (ropts.use_tcp) {
    std::fprintf(stderr, "ssm route: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(router.port()));
  } else {
    std::fprintf(stderr, "ssm route: listening on %s\n",
                 ropts.unix_socket.c_str());
  }
  g_routing = &router;
  struct sigaction sa{};
  sa.sa_handler = handle_route_drain_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  router.wait();
  g_routing = nullptr;
  std::fprintf(stderr, "ssm route: drained, exiting\n");
  return 0;
}

/// `ssm client ... trace [file]`: streams a trace-format NDJSON file (or
/// stdin) to a live server in begin/ops/end chunks and prints the raw
/// response frames — whose verdict payloads are deterministic (no timing
/// fields), so two runs over the same trace print identical bytes.
int client_trace(service::Client& client, const std::vector<std::string>& rest,
                 const GlobalOptions& opts) {
  (void)opts;
  std::string path;
  std::string model;
  std::uint64_t window = 0;
  std::uint64_t chunk = 4096;
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return rest[++i];
    };
    if (arg == "--model") {
      model = value();
    } else if (arg == "--window") {
      window = parse_u64("--window value", value().c_str());
    } else if (arg == "--chunk") {
      chunk = parse_u64("--chunk value", value().c_str());
      if (chunk == 0) {
        std::fprintf(stderr, "ssm client: --chunk must be >= 1\n");
        return 64;
      }
    } else if (arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  std::ifstream file;
  if (!path.empty()) {
    file.open(path, std::ios::binary);
    if (!file) throw InvalidInput("cannot open " + path);
  }
  std::istream& in = path.empty() ? std::cin : file;

  std::string line;
  std::string header;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      header = line;
      break;
    }
  }
  if (header.empty()) throw InvalidInput("empty trace: no header line");

  const auto roundtrip = [&](const std::string& frame) {
    const std::string reply = client.call(frame);
    std::printf("%s\n", reply.c_str());
    return common::json::parse(reply);
  };

  std::string begin = "{\"op\": \"trace\", \"id\": \"t0\", "
                      "\"phase\": \"begin\", \"header\": ";
  common::json::append_quoted(begin, header);
  if (!model.empty()) {
    begin += ", \"model\": ";
    common::json::append_quoted(begin, model);
  }
  if (window != 0) begin += ", \"window\": " + std::to_string(window);
  begin += '}';
  if (!roundtrip(begin).at("ok").as_bool()) return 2;

  std::uint64_t next_id = 0;
  std::string lines;
  std::uint64_t in_chunk = 0;
  bool failed = false;
  const auto flush_chunk = [&] {
    if (lines.empty()) return;
    std::string frame = "{\"op\": \"trace\", \"id\": \"t" +
                        std::to_string(++next_id) +
                        "\", \"phase\": \"ops\", \"lines\": ";
    common::json::append_quoted(frame, lines);
    frame += '}';
    if (!roundtrip(frame).at("ok").as_bool()) failed = true;
    lines.clear();
    in_chunk = 0;
  };
  while (!failed && std::getline(in, line)) {
    lines += line;
    lines += '\n';  // chunks are byte splits of the NDJSON op stream
    if (++in_chunk >= chunk) flush_chunk();
  }
  if (!failed) flush_chunk();
  if (failed) return 2;

  const auto doc = roundtrip("{\"op\": \"trace\", \"id\": \"t" +
                             std::to_string(++next_id) +
                             "\", \"phase\": \"end\"}");
  if (!doc.at("ok").as_bool()) return 2;
  return doc.at("summary").at("violations").as_u64() > 0 ? 3 : 0;
}

int cmd_client(int argc, char** argv, const GlobalOptions& opts) {
  std::string socket_path;
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;
  bool no_cache = false;
  bool expect_cached = false;
  service::ClientDeadlines deadlines;
  std::size_t pipeline = 1;
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp") {
      use_tcp = true;
      tcp_port = static_cast<std::uint16_t>(parse_u32("--tcp port", value()));
    } else if (arg == "--host") {
      host = value();
      if (host.empty()) {
        std::fprintf(stderr, "ssm client: --host must be non-empty\n");
        return 64;
      }
    } else if (arg == "--connect-timeout-ms") {
      deadlines.connect_ms = parse_u32("--connect-timeout-ms value", value());
    } else if (arg == "--io-timeout-ms") {
      deadlines.io_ms = parse_u32("--io-timeout-ms value", value());
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--expect-cached") {
      expect_cached = true;
    } else if (arg == "--pipeline") {
      pipeline = parse_u64("--pipeline value", value());
      if (pipeline == 0) {
        std::fprintf(stderr, "ssm client: --pipeline must be >= 1\n");
        return 64;
      }
    } else {
      rest.push_back(arg);
    }
  }
  if ((socket_path.empty() && !use_tcp) || rest.empty()) return usage();
  auto client = use_tcp
                    ? service::Client::connect_tcp(host, tcp_port, deadlines)
                    : service::Client::connect_unix(socket_path, deadlines);

  const std::string& op = rest[0];
  if (op == "ping" || op == "stats" || op == "shutdown") {
    const std::string reply =
        client.call("{\"op\": \"" + op + "\", \"id\": \"cli\"}");
    std::printf("%s\n", reply.c_str());
    const auto doc = common::json::parse(reply);
    return doc.at("ok").as_bool() ? 0 : 2;
  }
  if (op == "trace") return client_trace(client, rest, opts);
  if (op != "check" || rest.size() < 2) return usage();

  std::ifstream in(rest[1]);
  if (!in) throw InvalidInput("cannot open " + rest[1]);
  std::ostringstream text;
  text << in.rdbuf();
  const auto tests = litmus::parse_suite(text.str());
  std::vector<std::string> model_args(rest.begin() + 2, rest.end());

  // One request per test (the protocol takes exactly one program each).
  // With --pipeline W, up to W requests are on the wire before the first
  // response is read; the server answers strictly in request order on one
  // connection, which the id check below enforces (exit 5 on a violation).
  std::vector<std::string> frames;
  frames.reserve(tests.size());
  for (const auto& t : tests) {
    std::string frame = "{\"op\": \"check\", \"id\": ";
    common::json::append_quoted(frame, t.name);
    frame += ", \"program\": ";
    common::json::append_quoted(frame, litmus::emit(t));
    if (!model_args.empty()) {
      frame += ", \"models\": [";
      for (std::size_t i = 0; i < model_args.size(); ++i) {
        if (i > 0) frame += ", ";
        common::json::append_quoted(frame, model_args[i]);
      }
      frame += ']';
    }
    if (opts.budget.max_nodes != 0) {
      frame += ", \"max_nodes\": " + std::to_string(opts.budget.max_nodes);
    }
    if (opts.budget.timeout_ms != 0) {
      frame += ", \"timeout_ms\": " + std::to_string(opts.budget.timeout_ms);
    }
    if (opts.backend != checker::Backend::Search) {
      frame += ", \"backend\": \"";
      frame += checker::to_string(opts.backend);
      frame += '"';
    }
    if (no_cache) frame += ", \"no_cache\": true";
    frame += '}';
    frames.push_back(std::move(frame));
  }

  int worst = 0;
  std::size_t sent = 0;
  for (std::size_t recvd = 0; recvd < frames.size(); ++recvd) {
    while (sent < frames.size() && sent - recvd < pipeline) {
      client.send_frame(frames[sent]);
      ++sent;
    }
    const auto reply = client.read_frame();
    if (!reply) {
      std::fprintf(stderr, "ssm client: server closed mid-conversation\n");
      return 2;
    }
    std::printf("%s\n", reply->c_str());
    const auto doc = common::json::parse(*reply);
    const litmus::LitmusTest& t = tests[recvd];
    if (doc.at("id").as_string() != t.name) {
      std::fprintf(stderr,
                   "ssm client: response out of order: expected id %s, "
                   "got %s\n",
                   t.name.c_str(), doc.at("id").as_string().c_str());
      return 5;
    }
    if (!doc.at("ok").as_bool()) {
      worst = std::max(worst, 2);
      continue;
    }
    if (expect_cached) {
      for (const auto& r : doc.at("results").items()) {
        if (r.at("source").as_string() != "cache") {
          std::fprintf(stderr,
                       "ssm client: expected a cache hit for %s/%s, got %s\n",
                       t.name.c_str(), r.at("model").as_string().c_str(),
                       r.at("source").as_string().c_str());
          worst = std::max(worst, 7);
        }
      }
    }
  }
  return worst;
}

int cmd_trace_gen(int argc, char** argv) {
  trace::TraceGenOptions gopts;
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--machine") {
      gopts.machine = value();
    } else if (arg == "--scenario") {
      gopts.scenario = value();
    } else if (arg == "--ops") {
      gopts.ops = parse_u64("--ops value", value());
    } else if (arg == "--seed") {
      gopts.seed = parse_u64("--seed value", value());
    } else if (arg == "--procs") {
      gopts.procs = parse_u32("--procs value", value());
    } else if (arg == "--locs") {
      gopts.locs = parse_u32("--locs value", value());
    } else if (arg == "--write-percent") {
      gopts.write_percent = parse_u32("--write-percent value", value());
    } else if (arg == "--sync-locs") {
      gopts.sync_locs = parse_u32("--sync-locs value", value());
    } else if (arg == "-o" || arg == "--out") {
      out_path = value();
    } else {
      return usage();
    }
  }
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!file) throw InvalidInput("cannot open " + out_path + " for writing");
  }
  std::ostream& out = out_path.empty() ? std::cout : file;
  const auto result = trace::generate_trace(gopts, out);
  out.flush();
  if (!out) throw InvalidInput("short write emitting trace");
  std::fprintf(stderr,
               "ssm trace gen: machine=%s scenario=%s seed=%llu ops=%llu%s\n",
               gopts.machine.c_str(), gopts.scenario.c_str(),
               static_cast<unsigned long long>(gopts.seed),
               static_cast<unsigned long long>(result.ops),
               result.livelock ? " (livelock guard hit)" : "");
  return 0;
}

int cmd_trace_check(int argc, char** argv, const GlobalOptions& opts) {
  trace::StreamOptions sopts;
  // Global budget flags, when given, bound each window's fallback check.
  if (opts.budget.max_nodes != 0 || opts.budget.timeout_ms != 0) {
    sopts.window_budget = opts.budget;
  }
  std::string in_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssm: flag %s needs a value\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      sopts.model = value();
    } else if (arg == "--window") {
      sopts.window_ops = parse_u64("--window value", value());
    } else if (arg == "--ring") {
      sopts.retired_ring = parse_u64("--ring value", value());
    } else if (arg == "--serial") {
      sopts.parallel = false;
    } else if (arg[0] != '-' && in_path.empty()) {
      in_path = arg;
    } else {
      return usage();
    }
  }
  std::ifstream file;
  if (!in_path.empty()) {
    file.open(in_path, std::ios::binary);
    if (!file) throw InvalidInput("cannot open " + in_path);
  }
  std::istream& in = in_path.empty() ? std::cin : file;
  trace::TraceReader reader(in);
  trace::StreamingChecker checker(reader.read_header(), sopts);
  checker.set_verdict_sink([](const trace::WindowVerdict& v) {
    const std::string line = trace::verdict_line(v);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
  });
  trace::TraceOp op;
  while (reader.next(op)) checker.feed(op);
  const auto summary = checker.finish();
  std::printf("%s\n", summary.to_json_line().c_str());
  return summary.violations > 0 ? 3 : 0;
}

int cmd_trace(int argc, char** argv, const GlobalOptions& opts) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "gen") return cmd_trace_gen(argc, argv);
  if (sub == "check") return cmd_trace_check(argc, argv, opts);
  std::fprintf(stderr, "ssm trace: unknown subcommand '%s' (gen|check)\n",
               sub.c_str());
  return usage();
}

int cmd_lattice(int argc, char** argv) {
  lattice::EnumerationSpec spec;
  if (argc >= 5) {
    spec.procs = parse_u32("lattice procs", argv[2]);
    spec.ops_per_proc = parse_u32("lattice ops-per-proc", argv[3]);
    spec.locs = parse_u32("lattice locs", argv[4]);
  }
  const auto report =
      lattice::compute_inclusions(spec, models::paper_models());
  std::printf("%s", report.format().c_str());
  return 0;
}

int cmd_bakery(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string machine = argv[2];
  const std::uint32_t n = argc > 3 ? parse_u32("bakery n", argv[3]) : 2;
  bakery::MachineFactory factory;
  if (machine == "sc") {
    factory = [](std::size_t p, std::size_t l) {
      return sim::make_sc_machine(p, l);
    };
  } else if (machine == "tso") {
    factory = [](std::size_t p, std::size_t l) {
      return sim::make_tso_machine(p, l);
    };
  } else if (machine == "rc-sc") {
    factory = [](std::size_t p, std::size_t l) {
      return sim::make_rc_sc_machine(p, l);
    };
  } else if (machine == "rc-pc") {
    factory = [](std::size_t p, std::size_t l) {
      return sim::make_rc_pc_machine(p, l);
    };
  } else {
    std::fprintf(stderr, "unknown machine '%s' (sc|tso|rc-sc|rc-pc)\n",
                 machine.c_str());
    return 64;
  }
  sim::SchedulerOptions adversarial;
  adversarial.policy = sim::Policy::DelayDelivery;
  adversarial.max_spin = 200;
  const auto run = bakery::run_bakery(
      factory, n, bakery::BakeryOptions{1, false}, adversarial);
  std::printf("machine=%s n=%u cs_entries=%llu violations=%llu%s\n",
              machine.c_str(), n,
              static_cast<unsigned long long>(run.cs_entries),
              static_cast<unsigned long long>(run.violations),
              run.livelock ? " (livelock guard hit)" : "");
  if (run.violations > 0) {
    std::printf("violating trace:\n%s",
                history::format_history(run.trace).c_str());
  }
  return 0;
}

void print_edges(const history::SystemHistory& h, const char* name,
                 const rel::Relation& r) {
  std::printf("%s:\n", name);
  for (std::size_t a = 0; a < r.size(); ++a) {
    r.successors(a).for_each([&](std::size_t b) {
      std::printf("  %s -> %s\n",
                  history::format_op(h, static_cast<OpIndex>(a)).c_str(),
                  history::format_op(h, static_cast<OpIndex>(b)).c_str());
    });
  }
}

int cmd_explain(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto& t = litmus::find_test(argv[2]);
  const auto& h = t.hist;
  std::printf("%s\n", history::format_history(h).c_str());
  print_edges(h, "wb (writes-before)", order::writes_before(h));
  print_edges(h, "ppo (partial program order)",
              order::partial_program_order(h));
  print_edges(h, "co (causal order)", order::causal_order(h));
  const auto races = race::find_races(h);
  if (races.empty()) {
    std::printf("data races: none (history is DRF)\n");
  } else {
    std::printf("%s", race::format_races(h, races).c_str());
  }
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto& t = litmus::find_test(argv[2]);
  const auto& h = t.hist;
  const auto po = order::program_order(h);
  const auto wb = order::writes_before(h);
  std::printf("%s",
              history::to_dot(h,
                              {{"po", "gray50", &po, true},
                               {"wb", "blue", &wb, false}},
                              t.name)
                  .c_str());
  return 0;
}

int cmd_separate(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto a = models::make_model(argv[2]);
  const auto b = models::make_model(argv[3]);
  const auto witness = lattice::find_separation(*a, *b);
  if (!witness) {
    std::printf("no history in %s \\ %s over the scanned universes "
                "(consistent with %s being at least as strong)\n",
                argv[2], argv[3], argv[2]);
    return 0;
  }
  const auto minimal = lattice::shrink_separation(*witness, *a, *b);
  std::printf("admitted by %s, rejected by %s (shrunk to %zu ops):\n%s",
              argv[2], argv[3], minimal.size(),
              history::format_history(minimal).c_str());
  return 0;
}

int cmd_identify(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto op = models::make_operational(argv[2]);
  lattice::EnumerationSpec spec;  // 2 procs x 2 ops, 2 locs
  struct Row {
    std::string model;
    std::uint64_t agree = 0;
    std::uint64_t unsound = 0;     // reachable but rejected
    std::uint64_t incomplete = 0;  // admitted but unreachable
  };
  std::vector<Row> rows;
  for (const auto& name : models::model_names()) {
    rows.push_back({name});
  }
  std::uint64_t total = 0;
  lattice::for_each_history(spec, [&](const history::SystemHistory& h) {
    ++total;
    const bool reachable = op->check(h).allowed;
    for (auto& row : rows) {
      const bool admitted = models::make_model(row.model)->check(h).allowed;
      if (reachable == admitted) ++row.agree;
      if (reachable && !admitted) ++row.unsound;
      if (admitted && !reachable) ++row.incomplete;
    }
    return true;
  });
  std::printf("machine '%s' vs declarative models over %llu histories\n",
              argv[2], static_cast<unsigned long long>(total));
  std::printf("%-10s %9s %8s %11s\n", "model", "agree", "unsound",
              "incomplete");
  for (const auto& row : rows) {
    std::printf("%-10s %8.1f%% %8llu %11llu%s\n", row.model.c_str(),
                100.0 * static_cast<double>(row.agree) /
                    static_cast<double>(total),
                static_cast<unsigned long long>(row.unsound),
                static_cast<unsigned long long>(row.incomplete),
                row.agree == total ? "   <- exact match" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  GlobalOptions opts;
  if (!apply_global_flags(argc, argv, opts)) return usage();
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      print_usage(stdout);
      return 0;
    }
    if (cmd == "models") return cmd_models();
    if (cmd == "tests") return cmd_tests();
    if (cmd == "check") return cmd_check(argc, argv, opts);
    if (cmd == "show") return cmd_show(argc, argv, opts);
    if (cmd == "matrix") return cmd_matrix(argc, argv, opts);
    if (cmd == "lattice") return cmd_lattice(argc, argv);
    if (cmd == "bakery") return cmd_bakery(argc, argv);
    if (cmd == "explain") return cmd_explain(argc, argv);
    if (cmd == "dot") return cmd_dot(argc, argv);
    if (cmd == "separate") return cmd_separate(argc, argv);
    if (cmd == "identify") return cmd_identify(argc, argv);
    if (cmd == "fuzz") return cmd_fuzz(argc, argv, opts);
    if (cmd == "replay") return cmd_replay(argc, argv, opts);
    if (cmd == "serve") return cmd_serve(argc, argv, opts);
    if (cmd == "route") return cmd_route(argc, argv, opts);
    if (cmd == "client") return cmd_client(argc, argv, opts);
    if (cmd == "trace") return cmd_trace(argc, argv, opts);
    std::fprintf(stderr, "ssm: unknown command '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
