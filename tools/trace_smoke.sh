#!/bin/sh
# Trace-streaming smoke test (ctest: cli_trace_smoke, labels `service`
# and `concurrency` — the TSan build runs it to race-check the strand ->
# TraceSession handoff).
#
# Starts `ssm serve` on a private unix socket, generates a seeded trace
# with `ssm trace gen`, streams it twice through `ssm client trace`
# (begin/ops/end chunks down one connection), and asserts the two verdict
# streams are byte-identical — the trace responses carry no timing
# fields, so any divergence is a determinism bug.  The streamed digest
# must also match a local `ssm trace check` run over the same file, the
# buggy RC_pc bakery trace must come back as a violation (client exit 3),
# and the protocol shutdown must drain cleanly.
#
# usage: trace_smoke.sh <ssm-binary>
set -eu

SSM="$1"

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssm-trace-smoke-XXXXXX")
trap 'rm -rf "$TMP"' EXIT
SOCK="$TMP/s"

"$SSM" serve --socket "$SOCK" --workers 2 2> "$TMP/serve.log" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server socket never appeared" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

# A seeded 20k-op SC workload trace (byte-identical per seed).
"$SSM" trace gen --machine sc --ops 20000 --seed 11 -o "$TMP/sc.ndjson" \
  2> /dev/null
"$SSM" trace gen --machine sc --ops 20000 --seed 11 2> /dev/null \
  | cmp -s - "$TMP/sc.ndjson" || {
  echo "FAIL: trace gen is not byte-identical per seed" >&2
  exit 1
}

# Stream it twice; the verdict streams must match byte for byte.
"$SSM" client --socket "$SOCK" trace "$TMP/sc.ndjson" --chunk 3000 \
  > "$TMP/run1.out"
"$SSM" client --socket "$SOCK" trace "$TMP/sc.ndjson" --chunk 3000 \
  > "$TMP/run2.out"
cmp -s "$TMP/run1.out" "$TMP/run2.out" || {
  echo "FAIL: streamed verdicts differ between two identical runs" >&2
  diff "$TMP/run1.out" "$TMP/run2.out" >&2 || true
  exit 1
}

# The streamed digest equals the local streaming check's digest.
WIRE_DIGEST=$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$TMP/run1.out")
LOCAL_DIGEST=$("$SSM" trace check "$TMP/sc.ndjson" \
  | sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p')
[ -n "$WIRE_DIGEST" ] && [ "$WIRE_DIGEST" = "$LOCAL_DIGEST" ] || {
  echo "FAIL: wire digest '$WIRE_DIGEST' != local digest '$LOCAL_DIGEST'" >&2
  exit 1
}

# The §5 buggy trace: Bakery on rc-pc under the adversarial schedule is
# not SC-admissible; the client must report the violation via exit 3.
"$SSM" trace gen --scenario bakery --machine rc-pc --seed 3 \
  -o "$TMP/bak.ndjson" 2> /dev/null
RC=0
"$SSM" client --socket "$SOCK" trace "$TMP/bak.ndjson" --model SC \
  > "$TMP/bak.out" || RC=$?
[ "$RC" -eq 3 ] || {
  echo "FAIL: expected violation exit 3 from the rc-pc bakery trace," \
       "got $RC" >&2
  cat "$TMP/bak.out" >&2
  exit 1
}
grep -q '"status":"violation"' "$TMP/bak.out" || {
  echo "FAIL: no violation verdict in the bakery stream" >&2
  cat "$TMP/bak.out" >&2
  exit 1
}

# Protocol-level shutdown must drain and exit 0.
"$SSM" client --socket "$SOCK" shutdown > /dev/null
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited non-zero" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -q "drained, exiting" "$TMP/serve.log" || {
  echo "FAIL: no drain line in the server log" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}
echo "trace smoke OK"
