#!/bin/sh
# Service smoke test (ctest: cli_service_smoke, label `service`).
#
# Starts `ssm serve` on a private unix socket, replays three corpus
# entries through `ssm client`, replays them again asserting every cell
# comes back from the cache — once sequentially and once with 8 frames
# pipelined down one connection (responses must come back id-matched and
# in order; `ssm client --pipeline` exits 5 on reordering) — then shuts
# the server down through the protocol and checks it drains cleanly
# (exit 0, drain line logged).
#
# When a service_load binary is passed, a 512-connection soak rides
# along: every connection pipelines against the one event loop and the
# run must exit 0 (in-order responses, verdict digest stable across
# cold/warm passes).  Skipped when `ulimit -n` cannot cover 2 fds per
# connection plus slack.
#
# usage: service_smoke.sh <ssm-binary> <corpus-dir> [service-load-binary]
set -eu

SSM="$1"
CORPUS="$2"
LOAD="${3:-}"

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssm-smoke-XXXXXX")
trap 'rm -rf "$TMP"' EXIT
SOCK="$TMP/s"

"$SSM" serve --socket "$SOCK" --workers 2 2> "$TMP/serve.log" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server socket never appeared" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

pick_three() {
  ls "$CORPUS"/*.litmus | sort | head -n 3
}

# Pass 1: cold — every cell is solved (and cached).
for f in $(pick_three); do
  "$SSM" client --socket "$SOCK" check "$f" > /dev/null
done

# Pass 2: identical requests — 100% cache hits or --expect-cached exits 7.
for f in $(pick_three); do
  "$SSM" client --socket "$SOCK" check "$f" --expect-cached > /dev/null
done

# Pass 3: the same three warmed tests concatenated into one multi-test
# file and pipelined 8 frames deep down ONE connection — the client
# writes every frame before reading any response and exits 5 if the
# id-echoed responses come back out of order, 7 on a cache miss.
cat $(pick_three) > "$TMP/warm.litmus"
"$SSM" client --socket "$SOCK" check "$TMP/warm.litmus" --pipeline 8 \
  --expect-cached > /dev/null

# Protocol-level shutdown must drain and exit 0.
"$SSM" client --socket "$SOCK" shutdown > /dev/null
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited non-zero" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -q "drained, exiting" "$TMP/serve.log" || {
  echo "FAIL: no drain line in the server log" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}

# Soak: 512 pipelined connections against one event-loop thread.  The
# bench binary asserts in-order responses per connection and a stable
# verdict digest across the cold/warm passes (non-zero exit on either),
# so this doubles as a many-connection correctness gate.  2 fds per
# connection (client + server end, one process) plus slack for the
# binary's own files; skip rather than flake when the limit is too low.
if [ -n "$LOAD" ]; then
  SOAK_CONNS=512
  NOFILE=$(ulimit -n 2> /dev/null || echo 0)
  NEEDED=$((SOAK_CONNS * 2 + 128))
  if [ "$NOFILE" != "unlimited" ] && [ "$NOFILE" -lt "$NEEDED" ]; then
    # Try to raise the soft limit toward the hard limit before giving up.
    ulimit -n "$NEEDED" 2> /dev/null || true
    NOFILE=$(ulimit -n 2> /dev/null || echo 0)
  fi
  if [ "$NOFILE" = "unlimited" ] || [ "$NOFILE" -ge "$NEEDED" ]; then
    "$LOAD" --corpus "$CORPUS" --conns "$SOAK_CONNS" --iters 1 \
      --pipeline 4 --workers 2 > "$TMP/soak.json" || {
      echo "FAIL: 512-connection soak failed" >&2
      cat "$TMP/soak.json" >&2
      exit 1
    }
  else
    echo "soak skipped: ulimit -n $NOFILE < $NEEDED" >&2
  fi
fi
echo "service smoke OK"
