#!/bin/sh
# Service smoke test (ctest: cli_service_smoke, label `service`).
#
# Starts `ssm serve` on a private unix socket, replays three corpus
# entries through `ssm client`, replays them again asserting every cell
# comes back from the cache, then shuts the server down through the
# protocol and checks it drains cleanly (exit 0, drain line logged).
#
# usage: service_smoke.sh <ssm-binary> <corpus-dir>
set -eu

SSM="$1"
CORPUS="$2"

TMP=$(mktemp -d "${TMPDIR:-/tmp}/ssm-smoke-XXXXXX")
trap 'rm -rf "$TMP"' EXIT
SOCK="$TMP/s"

"$SSM" serve --socket "$SOCK" --workers 2 2> "$TMP/serve.log" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server socket never appeared" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

pick_three() {
  ls "$CORPUS"/*.litmus | sort | head -n 3
}

# Pass 1: cold — every cell is solved (and cached).
for f in $(pick_three); do
  "$SSM" client --socket "$SOCK" check "$f" > /dev/null
done

# Pass 2: identical requests — 100% cache hits or --expect-cached exits 7.
for f in $(pick_three); do
  "$SSM" client --socket "$SOCK" check "$f" --expect-cached > /dev/null
done

# Protocol-level shutdown must drain and exit 0.
"$SSM" client --socket "$SOCK" shutdown > /dev/null
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited non-zero" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -q "drained, exiting" "$TMP/serve.log" || {
  echo "FAIL: no drain line in the server log" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}
echo "service smoke OK"
